"""Processing element (PE) of the M-M engine (paper Section 6).

Each PE holds a small register file for intermediate values and supports
bypass, add, multiply, multiply-then-add, and add-then-multiply modes.
The functional model executes one operation per cycle; the cycle cost of
larger computations is handled by :class:`~repro.hw.mm_engine.MMEngine`.
"""

from __future__ import annotations

from enum import Enum
from typing import List

import numpy as np

from repro.errors import CapacityError, ConfigError


class PEMode(Enum):
    """Operating modes of a PE."""

    BYPASS = "bypass"
    ADD = "add"
    MULTIPLY = "multiply"
    MULTIPLY_ADD = "multiply_add"  # (a * b) + rf
    ADD_MULTIPLY = "add_multiply"  # (a + b) * rf


class PE:
    """One processing element with an ``rf_depth``-entry register file."""

    def __init__(self, rf_depth: int = 4):
        if rf_depth < 1:
            raise ConfigError(f"rf_depth must be >= 1, got {rf_depth}")
        self.rf_depth = rf_depth
        self.rf = np.zeros(rf_depth)
        self.ops_executed = 0

    def write_rf(self, index: int, value: float) -> None:
        """Load an intermediate value into the register file."""
        if not 0 <= index < self.rf_depth:
            raise CapacityError(
                f"RF index {index} out of range 0..{self.rf_depth - 1}"
            )
        self.rf[index] = value

    def read_rf(self, index: int) -> float:
        if not 0 <= index < self.rf_depth:
            raise CapacityError(
                f"RF index {index} out of range 0..{self.rf_depth - 1}"
            )
        return float(self.rf[index])

    def execute(self, mode: PEMode, a: float, b: float = 0.0, rf_index: int = 0) -> float:
        """One cycle of computation in ``mode``; result also lands in RF."""
        if mode is PEMode.BYPASS:
            result = a
        elif mode is PEMode.ADD:
            result = a + b
        elif mode is PEMode.MULTIPLY:
            result = a * b
        elif mode is PEMode.MULTIPLY_ADD:
            result = a * b + self.rf[rf_index]
        elif mode is PEMode.ADD_MULTIPLY:
            result = (a + b) * self.rf[rf_index]
        else:  # pragma: no cover - enum is closed
            raise ConfigError(f"unsupported mode {mode}")
        self.rf[rf_index] = result
        self.ops_executed += 1
        return float(result)

    def mac_sequence(self, a: np.ndarray, b: np.ndarray, rf_index: int = 0) -> float:
        """Dot product via repeated multiply-add (clears the accumulator)."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.shape != b.shape:
            raise ConfigError(f"operand shapes differ: {a.shape} vs {b.shape}")
        self.rf[rf_index] = 0.0
        for x, y in zip(a, b):
            self.execute(PEMode.MULTIPLY_ADD, float(x), float(y), rf_index)
        return float(self.rf[rf_index])


__all__ = ["PE", "PEMode"]
