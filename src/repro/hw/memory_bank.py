"""SRAM bank model: functional storage with access counting.

Area and energy of banks are computed by :mod:`repro.hw.area_model` /
:mod:`repro.hw.power_model`; this class provides capacity bookkeeping and
a functional array with read/write counters so simulations can report
access statistics (the paper's Table 1 access columns).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import CapacityError, ConfigError
from repro.utils.validation import check_positive


class MemoryBank:
    """One SRAM bank of ``words`` entries of ``bits_per_word`` bits."""

    def __init__(self, name: str, words: int, bits_per_word: int = 32):
        check_positive("words", words)
        check_positive("bits_per_word", bits_per_word)
        self.name = name
        self.words = words
        self.bits_per_word = bits_per_word
        self._data = np.zeros(words)
        self.reads = 0
        self.writes = 0

    @property
    def bytes(self) -> int:
        return self.words * self.bits_per_word // 8

    @property
    def kilobytes(self) -> float:
        return self.bytes / 1024.0

    # ------------------------------------------------------------------
    def read(self, address: int, length: int = 1) -> np.ndarray:
        """Read ``length`` consecutive words."""
        self._check_range(address, length)
        self.reads += length
        return self._data[address : address + length].copy()

    def write(self, address: int, values: np.ndarray) -> None:
        """Write consecutive words starting at ``address``."""
        values = np.atleast_1d(np.asarray(values, dtype=np.float64))
        self._check_range(address, len(values))
        self.writes += len(values)
        self._data[address : address + len(values)] = values

    def _check_range(self, address: int, length: int) -> None:
        if length < 1:
            raise ConfigError("access length must be >= 1")
        if address < 0 or address + length > self.words:
            raise CapacityError(
                f"bank {self.name!r}: access [{address}, {address + length}) "
                f"out of range [0, {self.words})"
            )

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0

    def __repr__(self) -> str:
        return f"MemoryBank({self.name!r}, {self.kilobytes:.1f} KB)"


__all__ = ["MemoryBank"]
