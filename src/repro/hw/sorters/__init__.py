"""Hardware sorter models — functional behaviour plus cycle counts.

* :mod:`repro.hw.sorters.bitonic` — bitonic networks and the P-input
  dual-mode pipelined bitonic sorter (DPBS) [24],
* :mod:`repro.hw.sorters.mdsa` — the 2-D multi-dimensional sorting
  algorithm (MDSA) local sorter [24],
* :mod:`repro.hw.sorters.merge` — the centralized merge-sort baseline [4]
  and the Nt-input parallel merge sorter (PMS) [23],
* :mod:`repro.hw.sorters.two_stage` — HiMA's local-global two-stage usage
  sort (paper Section 4.3).
"""

from repro.hw.sorters.bitonic import bitonic_sort, bitonic_stage_count, DPBS
from repro.hw.sorters.mdsa import MDSASorter
from repro.hw.sorters.merge import CentralizedMergeSorter, ParallelMergeSorter
from repro.hw.sorters.two_stage import TwoStageSorter

__all__ = [
    "bitonic_sort",
    "bitonic_stage_count",
    "DPBS",
    "MDSASorter",
    "CentralizedMergeSorter",
    "ParallelMergeSorter",
    "TwoStageSorter",
]
