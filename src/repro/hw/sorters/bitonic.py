"""Bitonic sorting networks and the dual-mode pipelined bitonic sorter.

A ``P``-input bitonic network has ``k(k+1)/2`` compare-exchange stages
(``k = log2 P``).  The DPBS of [24] packs two comparator stages per
pipeline register stage, giving a pipeline depth of ``ceil(k(k+1)/4)`` —
5 for the 16-input sorter, exactly the paper's ``D_DPBS = 5``.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.utils.validation import check_power_of_two


def bitonic_stage_count(width: int) -> int:
    """Comparator stages of a ``width``-input bitonic network."""
    check_power_of_two("width", width)
    k = int(math.log2(width))
    return k * (k + 1) // 2


def _compare_exchange(values: np.ndarray, i: int, j: int, ascending: bool) -> None:
    if (values[i] > values[j]) == ascending:
        values[i], values[j] = values[j], values[i]


def bitonic_sort(values: np.ndarray, ascending: bool = True) -> np.ndarray:
    """Functionally sort via the bitonic network (power-of-two length)."""
    values = np.array(values, dtype=np.float64, copy=True)
    n = len(values)
    check_power_of_two("len(values)", n)
    # Standard iterative bitonic network (Batcher).
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    direction = ((i & k) == 0) == ascending
                    _compare_exchange(values, i, partner, direction)
            j //= 2
        k *= 2
    return values


class DPBS:
    """Dual-mode pipelined bitonic sorter: ``P`` inputs per issue.

    ``mode`` per call selects ascending or descending output (the "dual
    mode" needed by the MDSA's alternating row sorts).  The pipeline depth
    :attr:`depth` is the cycle latency from issue to first output.
    """

    def __init__(self, width: int):
        check_power_of_two("width", width)
        self.width = width
        self.comparator_stages = bitonic_stage_count(width)
        #: Pipeline register stages: two comparator stages per register.
        self.depth = math.ceil(self.comparator_stages / 2)

    def sort(self, values: np.ndarray, ascending: bool = True) -> np.ndarray:
        """Sort one ``width``-wide input vector."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.width,):
            raise ConfigError(
                f"DPBS({self.width}) got input of shape {values.shape}"
            )
        return bitonic_sort(values, ascending=ascending)

    def pipeline_cycles(self, num_vectors: int) -> int:
        """Cycles to stream ``num_vectors`` inputs through the pipeline."""
        if num_vectors < 1:
            raise ConfigError("num_vectors must be >= 1")
        return num_vectors + self.depth

    def __repr__(self) -> str:
        return f"DPBS(width={self.width}, depth={self.depth})"


__all__ = ["bitonic_sort", "bitonic_stage_count", "DPBS"]
