"""The 2-D multi-dimensional sorting algorithm (MDSA) local sorter [24].

A length-``n`` vector is reshaped into a ``P x P`` matrix
(``P = ceil(sqrt(n))``, zero-padded with +inf sentinels) and sorted by
alternating row/column phases through a single ``P``-input DPBS — a
shear-sort-style schedule.  Rows are sorted in alternating directions
(boustrophedon) and columns ascending; the sorted result reads out in
snake order.

Cycle model (paper Section 4.3): the hardware completes the local sort in
``phases * (P + D_DPBS)`` cycles with ``phases = 6``; for ``n = 256``
(``P = 16``, ``D_DPBS = 5``) that is the paper's 126 cycles.  The
functional sorter runs phases until convergence (shear sort needs at most
``ceil(log2 P) + 1`` row/column rounds), and the test suite checks the
output is exactly sorted.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.hw.sorters.bitonic import DPBS

#: Padding key for unused matrix cells (finite, so diffs stay NaN-free).
_SENTINEL = np.finfo(np.float64).max


class MDSASorter:
    """Local usage sorter of one HiMA processing tile.

    Parameters
    ----------
    capacity:
        Maximum vector length ``n`` this sorter accepts (the per-tile
        usage shard, ``N / Nt``).
    phases:
        Phase count of the hardware cycle model (paper: 6).
    """

    def __init__(self, capacity: int, phases: int = 6):
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.phases = phases
        side = math.ceil(math.sqrt(capacity))
        # The DPBS needs a power-of-two width.
        self.side = 1 << (side - 1).bit_length()
        self.dpbs = DPBS(self.side)

    # ------------------------------------------------------------------
    def sort(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Sort ascending; returns ``(sorted_values, argsort_indices)``.

        Indices are returned because the usage sort needs the permutation
        (the allocation weighting addresses slots through it).  Ties
        resolve to ascending original index — bitwise the stable argsort
        — so the phase-level simulation and :meth:`sort_batch` agree on
        every input, tied or not.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1 or len(values) > self.capacity:
            raise ConfigError(
                f"MDSASorter(capacity={self.capacity}) got shape {values.shape}"
            )
        n = len(values)
        p = self.side
        padded = np.full(p * p, _SENTINEL)
        padded[:n] = values
        # Track original indices alongside the keys.
        index = np.full(p * p, -1, dtype=np.int64)
        index[:n] = np.arange(n)

        keys = padded.reshape(p, p)
        idx = index.reshape(p, p)
        max_rounds = math.ceil(math.log2(p)) + 1 if p > 1 else 1
        for _ in range(max_rounds):
            keys, idx = self._row_phase(keys, idx)
            if self._snake_sorted(keys):
                break
            keys, idx = self._column_phase(keys, idx)
            if self._snake_sorted(keys):
                # A final row phase canonicalizes the boustrophedon order.
                keys, idx = self._row_phase(keys, idx)
                break
        else:
            keys, idx = self._row_phase(keys, idx)

        flat_keys = self._snake_read(keys)
        flat_idx = self._snake_read(idx)
        valid = flat_idx >= 0
        flat_keys, flat_idx = flat_keys[valid], flat_idx[valid]
        # Canonicalize ties to index order: the comparator network emits
        # equal keys in whatever order the boustrophedon rows left them,
        # but the functional model must resolve ties exactly like the
        # reference's stable argsort (and sort_batch) so tied usage sorts
        # identically on every path.  lexsort is stable and flat_keys is
        # already sorted, so this only reorders within equal-key runs.
        canonical = np.lexsort((flat_idx, flat_keys))
        return flat_keys[canonical], flat_idx[canonical]

    # ------------------------------------------------------------------
    def sort_batch(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized batched sort: ``(..., n)`` -> sorted values + orders.

        Bitwise equivalent to running :meth:`sort` on every leading
        slice — the shear-sort schedule converges to the fully sorted
        sequence with ties canonicalized to index order, which one
        stable argsort produces directly — but executed as a single
        numpy call over the whole batch.  The cycle model is unchanged:
        one batch element still costs :meth:`cycle_count` cycles of
        hardware time.
        """
        values = np.asarray(values)
        if values.ndim < 1 or values.shape[-1] > self.capacity:
            raise ConfigError(
                f"MDSASorter(capacity={self.capacity}) got shape {values.shape}"
            )
        order = np.argsort(values, axis=-1, kind="stable")
        return np.take_along_axis(values, order, axis=-1), order

    # ------------------------------------------------------------------
    def _row_phase(
        self, keys: np.ndarray, idx: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sort each row through the DPBS, alternating direction."""
        keys = keys.copy()
        idx = idx.copy()
        for r in range(keys.shape[0]):
            ascending = r % 2 == 0
            order = np.argsort(keys[r], kind="stable")
            if not ascending:
                order = order[::-1]
            keys[r] = keys[r][order]
            idx[r] = idx[r][order]
        return keys, idx

    def _column_phase(
        self, keys: np.ndarray, idx: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sort each column ascending through the DPBS."""
        keys = keys.copy()
        idx = idx.copy()
        for c in range(keys.shape[1]):
            order = np.argsort(keys[:, c], kind="stable")
            keys[:, c] = keys[order, c]
            idx[:, c] = idx[order, c]
        return keys, idx

    def _snake_read(self, matrix: np.ndarray) -> np.ndarray:
        rows = [
            matrix[r] if r % 2 == 0 else matrix[r][::-1]
            for r in range(matrix.shape[0])
        ]
        return np.concatenate(rows)

    def _snake_sorted(self, keys: np.ndarray) -> bool:
        flat = self._snake_read(keys)
        return bool(np.all(np.diff(flat) >= 0))

    # ------------------------------------------------------------------
    def cycle_count(self, length: Optional[int] = None) -> int:
        """Hardware latency: ``phases * (P + D_DPBS)`` cycles.

        ``length`` (defaults to capacity) lets usage skimming shrink the
        effective matrix side.
        """
        n = self.capacity if length is None else length
        if n <= 1:
            return 0
        side = math.ceil(math.sqrt(n))
        side = 1 << (side - 1).bit_length()
        depth = DPBS(side).depth
        return self.phases * (side + depth)

    def __repr__(self) -> str:
        return f"MDSASorter(capacity={self.capacity}, P={self.side})"


__all__ = ["MDSASorter"]
