"""Merge-sort hardware models.

:class:`CentralizedMergeSorter` is the baseline the paper compares against
([4]): a single engine taking ``N * log2(N)`` cycles for a length-``N``
vector.

:class:`ParallelMergeSorter` (PMS) is the high-performance merge sorter of
Mashimo et al. [23] used in HiMA's CT: it merges ``Nt`` sorted streams and
emits ``Nt`` sorted outputs per cycle after a pipeline fill of ``D_PMS``
cycles.  With the depth model ``D_PMS = 2*log2(Nt) + 3`` the 4-input PMS
has the paper's ``D_PMS = 7``, and merging 4 streams of 256 entries takes
``256 + 7 = 263`` cycles, matching Section 4.3.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.utils.validation import check_power_of_two


class CentralizedMergeSorter:
    """Single-engine merge sort (the [4] baseline cycle model)."""

    def sort(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Sort ascending; returns ``(sorted_values, argsort_indices)``."""
        values = np.asarray(values, dtype=np.float64)
        order = np.argsort(values, kind="stable")
        return values[order], order

    def cycle_count(self, length: int) -> int:
        """``N log2 N`` cycles (N=1024 -> 10240, as quoted in Sec. 4.3)."""
        if length <= 1:
            return 0
        return int(length * math.ceil(math.log2(length)))

    def pipelined_cycle_count(self, length: int, num_streams: int = 4) -> int:
        """Cycle count of the *hardware* centralized sorter of Fig. 7(a).

        The [4]-style engine pre-sorts buffered chunks and then merges
        them through a single-output merge controller: one output per
        cycle after the chunks are pre-sorted.  This is the model used
        for the HiMA-baseline prototype (its modest 1.12x two-stage gain
        implies the baseline is far better than the naive ``N log N``
        software bound).
        """
        if length <= 1:
            return 0
        if num_streams < 1:
            raise ConfigError("num_streams must be >= 1")
        from repro.hw.sorters.mdsa import MDSASorter

        chunk = math.ceil(length / num_streams)
        presort = MDSASorter(chunk).cycle_count(chunk)
        return presort + length


class ParallelMergeSorter:
    """``Nt``-input parallel merge sorter (PMS) [23].

    Merges ``num_inputs`` pre-sorted streams, producing ``num_inputs``
    outputs per cycle once the ``depth``-stage pipeline fills.
    """

    def __init__(self, num_inputs: int):
        check_power_of_two("num_inputs", num_inputs)
        self.num_inputs = num_inputs
        #: Pipeline depth: 2*log2(Nt) + 3 (7 stages for the 4-input PMS).
        self.depth = 2 * int(math.log2(num_inputs)) + 3 if num_inputs > 1 else 1

    def merge(self, streams: Sequence[np.ndarray]) -> np.ndarray:
        """Functionally merge sorted streams into one sorted array."""
        if len(streams) != self.num_inputs:
            raise ConfigError(
                f"PMS({self.num_inputs}) got {len(streams)} input streams"
            )
        for i, stream in enumerate(streams):
            arr = np.asarray(stream)
            if arr.ndim != 1:
                raise ConfigError(f"stream {i} is not 1-D")
            if len(arr) > 1 and np.any(np.diff(arr) < 0):
                raise ConfigError(f"stream {i} is not sorted ascending")
        merged = list(heapq.merge(*[list(map(float, s)) for s in streams]))
        return np.asarray(merged, dtype=np.float64)

    def merge_batch(
        self, streams: np.ndarray, validate: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Merge a batch of sorted stream stacks in one vectorized pass.

        ``streams`` is ``(..., Nt, n)`` — ``Nt = num_inputs`` pre-sorted
        streams of length ``n`` per leading element.  Returns
        ``(merged, positions)`` where ``merged`` is ``(..., Nt * n)``
        sorted ascending and ``positions`` holds, per output, the flat
        input position ``stream_index * n + element_index``.

        Ties resolve by ``(stream_index, element_index)`` — bitwise the
        same policy as :meth:`merge_with_sources` — because the stable
        argsort runs over the streams concatenated in stream order.

        ``validate=False`` skips the sorted-input check for callers that
        produce the streams from a sort (the engine's per-step hot path,
        where re-proving the invariant would cost a full extra pass).
        """
        arr = np.asarray(streams)
        if arr.ndim < 2 or arr.shape[-2] != self.num_inputs:
            raise ConfigError(
                f"PMS({self.num_inputs}) merge_batch expects (..., "
                f"{self.num_inputs}, n) streams, got {arr.shape}"
            )
        if validate and arr.shape[-1] > 1 and np.any(np.diff(arr, axis=-1) < 0):
            raise ConfigError("merge_batch got an unsorted input stream")
        flat = arr.reshape(arr.shape[:-2] + (-1,))
        positions = np.argsort(flat, axis=-1, kind="stable")
        merged = np.take_along_axis(flat, positions, axis=-1)
        return merged, positions

    def merge_with_sources(
        self, streams: Sequence[np.ndarray]
    ) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
        """Merge and report, per output, ``(stream_index, element_index)``.

        The CT uses this to write sorted usage entries back to the owning
        PTs (paper Figure 7(b): per-bank read pointers).
        """
        entries = []
        for s_idx, stream in enumerate(streams):
            for e_idx, value in enumerate(np.asarray(stream, dtype=np.float64)):
                entries.append((float(value), s_idx, e_idx))
        entries.sort(key=lambda item: (item[0], item[1], item[2]))
        values = np.asarray([e[0] for e in entries])
        sources = [(e[1], e[2]) for e in entries]
        return values, sources

    def cycle_count(self, per_stream_length: int) -> int:
        """``n + D_PMS`` cycles to merge streams of length ``n`` each."""
        if per_stream_length < 0:
            raise ConfigError("per_stream_length must be >= 0")
        if per_stream_length == 0:
            return 0
        return per_stream_length + self.depth

    def __repr__(self) -> str:
        return f"ParallelMergeSorter(inputs={self.num_inputs}, depth={self.depth})"


__all__ = ["CentralizedMergeSorter", "ParallelMergeSorter"]
