"""HiMA's local-global two-stage usage sort (paper Section 4.3).

Stage 1: every PT sorts its local usage shard (length ``n = N / Nt``)
with an MDSA sorter in ``6 * (P + D_DPBS)`` cycles (all PTs in parallel).
Stage 2: the CT merges the ``Nt`` sorted shards with an ``Nt``-input PMS
in ``n + D_PMS`` cycles.

Reference point (paper): ``N = 1024, Nt = 4`` gives
``6*(16+5) + 256 + 7 = 389`` cycles versus ``N log2 N = 10240`` for the
centralized merge sort — a 26x reduction.

Usage skimming composes naturally: only ``(1-K) * n`` entries per tile
enter the sorters, shrinking both stages.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.hw.sorters.mdsa import MDSASorter
from repro.hw.sorters.merge import ParallelMergeSorter
from repro.utils.validation import check_positive


class TwoStageSorter:
    """Distributed usage sorter across ``num_tiles`` PTs plus the CT.

    Parameters
    ----------
    total_length:
        Global usage vector length ``N`` (divisible by ``num_tiles``).
    num_tiles:
        PT count ``Nt`` (power of two, for the PMS).
    """

    def __init__(self, total_length: int, num_tiles: int):
        check_positive("total_length", total_length)
        check_positive("num_tiles", num_tiles)
        if total_length % num_tiles != 0:
            raise ConfigError(
                f"total_length ({total_length}) must divide evenly across "
                f"{num_tiles} tiles"
            )
        self.total_length = total_length
        self.num_tiles = num_tiles
        self.local_length = total_length // num_tiles
        self.local_sorter = MDSASorter(self.local_length)
        self.merger = ParallelMergeSorter(num_tiles)

    # ------------------------------------------------------------------
    def sort(self, usage: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Sort a global usage vector; returns ``(values, global_indices)``.

        The vector is sharded row-block-wise across tiles exactly as
        HiMA's memory partition does, so tile ``t`` owns entries
        ``[t*n, (t+1)*n)``.
        """
        usage = np.asarray(usage, dtype=np.float64)
        if usage.shape != (self.total_length,):
            raise ConfigError(
                f"expected usage of shape ({self.total_length},), got {usage.shape}"
            )
        n = self.local_length
        local_sorted: List[np.ndarray] = []
        local_orders: List[np.ndarray] = []
        for t in range(self.num_tiles):
            values, order = self.local_sorter.sort(usage[t * n : (t + 1) * n])
            local_sorted.append(values)
            local_orders.append(order)

        merged, sources = self.merger.merge_with_sources(local_sorted)
        global_indices = np.asarray(
            [local_orders[s][e] + s * n for s, e in sources], dtype=np.int64
        )
        return merged, global_indices

    # ------------------------------------------------------------------
    def cycle_count(self, effective_length: int = None) -> int:
        """Total latency: stage-1 (parallel) + stage-2 (merge).

        ``effective_length`` models usage skimming (only ``N - K``
        entries are sorted); defaults to the full ``N``.
        """
        total = self.total_length if effective_length is None else effective_length
        per_tile = math.ceil(total / self.num_tiles)
        stage1 = self.local_sorter.cycle_count(per_tile)
        stage2 = self.merger.cycle_count(per_tile)
        return stage1 + stage2

    def stage_cycles(self) -> Tuple[int, int]:
        """(stage-1, stage-2) cycle counts at full length."""
        return (
            self.local_sorter.cycle_count(self.local_length),
            self.merger.cycle_count(self.local_length),
        )

    def __repr__(self) -> str:
        return (
            f"TwoStageSorter(N={self.total_length}, Nt={self.num_tiles}, "
            f"cycles={self.cycle_count()})"
        )


__all__ = ["TwoStageSorter"]
