"""HiMA's local-global two-stage usage sort (paper Section 4.3).

Stage 1: every PT sorts its local usage shard (length ``n = N / Nt``)
with an MDSA sorter in ``6 * (P + D_DPBS)`` cycles (all PTs in parallel).
Stage 2: the CT merges the ``Nt`` sorted shards with an ``Nt``-input PMS
in ``n + D_PMS`` cycles.

Reference point (paper): ``N = 1024, Nt = 4`` gives
``6*(16+5) + 256 + 7 = 389`` cycles versus ``N log2 N = 10240`` for the
centralized merge sort — a 26x reduction.

Usage skimming composes naturally: only ``(1-K) * n`` entries per tile
enter the sorters, shrinking both stages.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.hw.sorters.mdsa import MDSASorter
from repro.hw.sorters.merge import ParallelMergeSorter
from repro.utils.validation import check_positive


class TwoStageSorter:
    """Distributed usage sorter across ``num_tiles`` PTs plus the CT.

    Parameters
    ----------
    total_length:
        Global usage vector length ``N`` (divisible by ``num_tiles``).
    num_tiles:
        PT count ``Nt`` (power of two, for the PMS).
    """

    def __init__(self, total_length: int, num_tiles: int):
        check_positive("total_length", total_length)
        check_positive("num_tiles", num_tiles)
        if total_length % num_tiles != 0:
            raise ConfigError(
                f"total_length ({total_length}) must divide evenly across "
                f"{num_tiles} tiles"
            )
        self.total_length = total_length
        self.num_tiles = num_tiles
        self.local_length = total_length // num_tiles
        self.local_sorter = MDSASorter(self.local_length)
        self.merger = ParallelMergeSorter(num_tiles)

    # ------------------------------------------------------------------
    def sort(self, usage: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Sort usage vectors; returns ``(values, global_indices)``.

        ``usage`` is ``(N,)`` or a batch ``(B, N)``; both return arrays of
        the input shape.  Each vector is sharded row-block-wise across
        tiles exactly as HiMA's memory partition does, so tile ``t`` owns
        entries ``[t*n, (t+1)*n)``.

        The unbatched path runs the phase-level MDSA/PMS hardware
        simulation per shard.  The batched path executes the same two
        stages — per-tile local sorts, then the ``Nt``-way merge with
        ties resolved by ``(tile, element)`` — as two vectorized numpy
        calls covering all ``B`` rows and ``Nt`` shards at once, with no
        Python loop over batch elements.
        """
        usage = np.asarray(usage)
        if usage.dtype not in (np.float32, np.float64):
            usage = usage.astype(np.float64)
        if usage.ndim == 2 and usage.shape[-1] == self.total_length:
            # Batched: sort in the input dtype (float32 orders identically
            # to float64, and upcasting would copy the whole batch on the
            # engine's per-step hot path).
            return self._sort_batch(usage)
        usage = usage.astype(np.float64, copy=False)
        if usage.shape != (self.total_length,):
            raise ConfigError(
                f"expected usage of shape ({self.total_length},) or "
                f"(B, {self.total_length}), got {usage.shape}"
            )
        n = self.local_length
        local_sorted: List[np.ndarray] = []
        local_orders: List[np.ndarray] = []
        for t in range(self.num_tiles):
            values, order = self.local_sorter.sort(usage[t * n : (t + 1) * n])
            local_sorted.append(values)
            local_orders.append(order)

        merged, sources = self.merger.merge_with_sources(local_sorted)
        global_indices = np.asarray(
            [local_orders[s][e] + s * n for s, e in sources], dtype=np.int64
        )
        return merged, global_indices

    def _sort_batch(self, usage: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized two-stage sort of a ``(B, N)`` usage batch."""
        n = self.local_length
        shards = usage.reshape(usage.shape[0], self.num_tiles, n)
        # Stage 1: every tile of every batch row sorts its shard — one
        # stacked stable argsort standing in for the MDSA arrays.
        local_sorted, local_order = self.local_sorter.sort_batch(shards)
        # Stage 2: the PMS merges the Nt sorted shards per row; ties keep
        # the (tile, element) policy of merge_with_sources, which maps to
        # ascending global index because shards are index-contiguous.
        # Inputs come straight from sort_batch, so skip re-validation.
        merged, positions = self.merger.merge_batch(local_sorted, validate=False)
        offsets = np.arange(self.num_tiles, dtype=np.int64)[None, :, None] * n
        global_idx = (local_order + offsets).reshape(usage.shape[0], -1)
        global_indices = np.take_along_axis(global_idx, positions, axis=-1)
        return merged, global_indices

    # ------------------------------------------------------------------
    def cycle_count(self, effective_length: Optional[int] = None) -> int:
        """Total latency: stage-1 (parallel) + stage-2 (merge).

        ``effective_length`` models usage skimming (only the ``N - K``
        unskimmed entries are sorted); defaults to the full ``N``.  It
        must satisfy ``0 <= effective_length <= total_length`` — zero
        (a fully skimmed sort, ``skim_fraction=1.0``) costs zero cycles,
        matching the MDSA/PMS contract.
        """
        if effective_length is None:
            total = self.total_length
        else:
            if not isinstance(effective_length, (int, np.integer)):
                raise ConfigError(
                    f"effective_length must be an int, got "
                    f"{type(effective_length).__name__}"
                )
            if not 0 <= effective_length <= self.total_length:
                raise ConfigError(
                    f"effective_length must be in [0, {self.total_length}], "
                    f"got {effective_length}"
                )
            total = int(effective_length)
        per_tile = math.ceil(total / self.num_tiles)
        stage1 = self.local_sorter.cycle_count(per_tile)
        stage2 = self.merger.cycle_count(per_tile)
        return stage1 + stage2

    def stage_cycles(self) -> Tuple[int, int]:
        """(stage-1, stage-2) cycle counts at full length."""
        return (
            self.local_sorter.cycle_count(self.local_length),
            self.merger.cycle_count(self.local_length),
        )

    def __repr__(self) -> str:
        return (
            f"TwoStageSorter(N={self.total_length}, Nt={self.num_tiles}, "
            f"cycles={self.cycle_count()})"
        )


__all__ = ["TwoStageSorter"]
