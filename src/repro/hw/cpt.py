"""Configurable processing tree (CPT) — the M-M engine's reduction fabric.

A binary tree of compute cells (adders / multipliers / special-function
units / bypass routes) that reduces a vector of partial results in
``log2(width)`` pipeline stages (paper Section 6).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.utils.validation import check_power_of_two

_REDUCERS: dict = {
    "add": lambda a, b: a + b,
    "max": max,
    "min": min,
    "multiply": lambda a, b: a * b,
}


class ConfigurableProcessingTree:
    """Binary reduction tree over ``width`` inputs.

    ``width`` must be a power of two; shorter vectors are padded with the
    reducer's identity.
    """

    def __init__(self, width: int):
        check_power_of_two("width", width)
        self.width = width
        #: Pipeline stages = tree depth.
        self.depth = int(math.log2(width)) if width > 1 else 1

    def reduce(self, values: Sequence[float], op: str = "add") -> float:
        """Reduce up to ``width`` values through the tree."""
        if op not in _REDUCERS:
            raise ConfigError(f"unsupported CPT op {op!r}; use {sorted(_REDUCERS)}")
        values = list(float(v) for v in values)
        if len(values) > self.width:
            raise ConfigError(
                f"CPT(width={self.width}) got {len(values)} inputs"
            )
        if not values:
            raise ConfigError("CPT.reduce needs at least one value")
        identity = {"add": 0.0, "max": -math.inf, "min": math.inf, "multiply": 1.0}[op]
        values += [identity] * (self.width - len(values))
        reducer = _REDUCERS[op]
        level = values
        while len(level) > 1:
            level = [reducer(level[i], level[i + 1]) for i in range(0, len(level), 2)]
        return float(level[0])

    def reduce_cycles(self, num_vectors: int = 1) -> int:
        """Cycles to stream ``num_vectors`` reductions through the tree."""
        if num_vectors < 1:
            raise ConfigError("num_vectors must be >= 1")
        return num_vectors + self.depth - 1

    def __repr__(self) -> str:
        return f"ConfigurableProcessingTree(width={self.width}, depth={self.depth})"


__all__ = ["ConfigurableProcessingTree"]
