"""Component-level silicon area model (40 nm, 32-bit datapath).

The model sums a component inventory per tile.  Its calibration anchors
come straight from the paper's Figure 11(e) discussion:

* the 262 KB linkage memory is 81.3 % of the 2.07 mm^2 PT memory system
  => SRAM density ~6.42e-6 mm^2/byte,
* the architectural features (MDSA sorter + multi-mode router) cost 1.8 %
  PT overhead over the baseline PT,
* logic-block splits follow the module power breakdown of Figure 11(f).

Memory sizes themselves are *derived* from the configuration (memory
partition shares), not hard-coded: e.g. the DNC linkage shard per PT is
``N^2 / Nt`` words (262 KB for N=1024, Nt=16 — exactly the paper's
number), while DNC-D's local linkage is ``(N/Nt)^2`` words.

The paper's DNC-D PT memory (1.53 mm^2) is larger than this inventory
implies (its buffer sizing is not broken down in the paper); our model
reports the principled inventory and EXPERIMENTS.md records the
difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigError
from repro.utils.validation import check_positive

#: SRAM density calibrated from the paper's linkage-memory data point.
SRAM_MM2_PER_BYTE = 1.683 / 262_144

#: Logic-block areas (mm^2), calibrated to Figure 11(e)/(f).
MM_ENGINE_MM2 = 1.90
ROUTER_MULTIMODE_MM2 = 0.35
ROUTER_HTREE_MM2 = 0.32
ROUTER_SIMPLE_MM2 = 0.10  # CT<->PT only (DNC-D eliminates inter-PT traffic)
MDSA_SORTER_MM2 = 0.06
PT_OTHER_LOGIC_MM2 = 0.63
CT_LOGIC_MM2 = 0.30
CT_ROUTER_MM2 = 0.10
CT_PMS_SORTER_MM2 = 0.06
CT_CENTRAL_SORTER_MM2 = 0.08
WORD_BYTES = 4  # 32-bit precision throughout, as in the paper

#: Per-PT staging buffers (two matrix buffers + loader), calibrated so the
#: HiMA-DNC PT memory system totals the paper's 2.07 mm^2.
PT_BUFFER_BYTES = 41_856


@dataclass
class AreaBreakdown:
    """Area report (mm^2) for one prototype."""

    pt_memory: float
    pt_logic: float
    ct_total: float
    num_tiles: int
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def pt_total(self) -> float:
        return self.pt_memory + self.pt_logic

    @property
    def total(self) -> float:
        return self.num_tiles * self.pt_total + self.ct_total


class AreaModel:
    """Computes :class:`AreaBreakdown` from an architecture description.

    Parameters mirror :class:`repro.core.config.HiMAConfig`; this module
    stays independent of :mod:`repro.core` to avoid import cycles.
    """

    def __init__(
        self,
        memory_size: int,
        word_size: int,
        num_reads: int,
        num_tiles: int,
        distributed: bool = False,
        two_stage_sort: bool = True,
        multimode_noc: bool = True,
    ):
        check_positive("memory_size", memory_size)
        check_positive("word_size", word_size)
        check_positive("num_reads", num_reads)
        check_positive("num_tiles", num_tiles)
        if memory_size % num_tiles:
            raise ConfigError("memory_size must be divisible by num_tiles")
        self.memory_size = memory_size
        self.word_size = word_size
        self.num_reads = num_reads
        self.num_tiles = num_tiles
        self.distributed = distributed
        self.two_stage_sort = two_stage_sort
        self.multimode_noc = multimode_noc

    # ------------------------------------------------------------------
    # Memory inventory (bytes per PT)
    # ------------------------------------------------------------------
    def external_memory_bytes(self) -> int:
        """Row-wise external memory shard: ``(N/Nt) * W`` words."""
        return (self.memory_size // self.num_tiles) * self.word_size * WORD_BYTES

    def linkage_bytes(self) -> int:
        """Linkage shard: ``N^2/Nt`` words (DNC, submatrix partition) or
        the local ``(N/Nt)^2`` words (DNC-D)."""
        n, nt = self.memory_size, self.num_tiles
        words = (n // nt) ** 2 if self.distributed else n * n // nt
        return words * WORD_BYTES

    def state_memory_bytes(self) -> int:
        """Usage + precedence + write weight + read weights shards."""
        n_local = self.memory_size // self.num_tiles
        words = n_local * (3 + self.num_reads) + self.num_reads * self.word_size
        return words * WORD_BYTES

    def pt_memory_bytes(self) -> int:
        return (
            self.external_memory_bytes()
            + self.linkage_bytes()
            + self.state_memory_bytes()
            + PT_BUFFER_BYTES
        )

    # ------------------------------------------------------------------
    def breakdown(self) -> AreaBreakdown:
        """Full area report for this prototype."""
        mem_area = self.pt_memory_bytes() * SRAM_MM2_PER_BYTE

        if self.distributed:
            router = ROUTER_SIMPLE_MM2
        elif self.multimode_noc:
            router = ROUTER_MULTIMODE_MM2
        else:
            router = ROUTER_HTREE_MM2
        sorter = MDSA_SORTER_MM2 if self.two_stage_sort else 0.0
        pt_logic = MM_ENGINE_MM2 + router + sorter + PT_OTHER_LOGIC_MM2

        ct = CT_LOGIC_MM2 + CT_ROUTER_MM2
        if self.distributed:
            # No global sort, simpler CT (paper: 0.18 mm^2).
            ct = CT_LOGIC_MM2 * 0.5 + ROUTER_SIMPLE_MM2 * 0.3
        elif self.two_stage_sort:
            usage_buffer = self.memory_size * WORD_BYTES * SRAM_MM2_PER_BYTE
            ct += CT_PMS_SORTER_MM2 + usage_buffer
        else:
            usage_buffer = self.memory_size * WORD_BYTES * SRAM_MM2_PER_BYTE
            ct += CT_CENTRAL_SORTER_MM2 + usage_buffer

        details = {
            "linkage_kb": self.linkage_bytes() / 1024.0,
            "external_kb": self.external_memory_bytes() / 1024.0,
            "state_kb": self.state_memory_bytes() / 1024.0,
            "buffer_kb": PT_BUFFER_BYTES / 1024.0,
            "mm_engine": MM_ENGINE_MM2,
            "router": router,
            "sorter": sorter,
            "other_logic": PT_OTHER_LOGIC_MM2,
        }
        return AreaBreakdown(
            pt_memory=mem_area,
            pt_logic=pt_logic,
            ct_total=ct,
            num_tiles=self.num_tiles,
            details=details,
        )


__all__ = ["AreaModel", "AreaBreakdown", "SRAM_MM2_PER_BYTE", "WORD_BYTES"]
