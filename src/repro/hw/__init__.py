"""Hardware component models: sorters, compute fabric, memories, and the
calibrated 40 nm area/power libraries."""

from repro.hw.pe import PE, PEMode
from repro.hw.cpt import ConfigurableProcessingTree
from repro.hw.mm_engine import MMEngine
from repro.hw.memory_bank import MemoryBank
from repro.hw.tech import TechnologyNode, normalize_area
from repro.hw.area_model import AreaModel, AreaBreakdown
from repro.hw.power_model import PowerModel, PowerBreakdown

__all__ = [
    "PE",
    "PEMode",
    "ConfigurableProcessingTree",
    "MMEngine",
    "MemoryBank",
    "TechnologyNode",
    "normalize_area",
    "AreaModel",
    "AreaBreakdown",
    "PowerModel",
    "PowerBreakdown",
]
