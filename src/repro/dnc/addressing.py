"""Differentiable DNC addressing kernels.

Every function here corresponds to a row of the paper's Table 1 (or a
labelled block of its Figure 2 dataflow) and operates on the trailing
dimensions, so an arbitrary leading batch shape is supported:

========================  ==========================================
paper kernel              function
========================  ==========================================
Normalize + Similarity    :func:`content_weights` (CW/CR (1)-(2))
Retention (HW.1)          :func:`retention_vector`
Usage (HW.2)              :func:`usage_vector`
Usage Sort + Allocation   :func:`allocation_weights` (HW.2-3)
Wr. Weight Merge (WM)     :func:`write_weights`
Memory Write (MW)         :func:`erase_and_write`
Linkage (HR.1)            :func:`linkage_update`
Precedence (HR.2)         :func:`precedence_update`
Forward-backward (HR.3)   :func:`forward_backward_weights`
Rd. Weight Merge (RM)     :func:`read_weights`
Memory Read (MR)          :func:`read_vectors`
========================  ==========================================

Sort order is treated as a constant (gradients flow through the gathered
values, not the permutation), matching standard DNC implementations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autodiff import ops
from repro.autodiff.functional import normalize
from repro.autodiff.tensor import Tensor, as_tensor

_EPSILON = 1e-6


def content_weights(memory: Tensor, keys: Tensor, strengths: Tensor) -> Tensor:
    """Content-based addressing for one or more heads.

    ``memory``: ``(..., N, W)``; ``keys``: ``(..., H, W)``;
    ``strengths``: ``(..., H)``.  Returns ``(..., H, N)`` weightings, each
    a softmax over the ``N`` memory rows.
    """
    mem_unit = normalize(memory, axis=-1)
    key_unit = normalize(keys, axis=-1)
    # (..., H, W) @ (..., W, N) -> (..., H, N)
    similarity = ops.matmul(key_unit, ops.transpose(mem_unit, _swap_last(memory.ndim)))
    strengths_col = ops.reshape(strengths, strengths.shape + (1,))
    return ops.softmax(ops.mul(similarity, strengths_col), axis=-1)


def retention_vector(free_gates: Tensor, prev_read_weights: Tensor) -> Tensor:
    """``psi[i] = prod_r (1 - f_r * w_r[r, i])`` — HW.(1).

    ``free_gates``: ``(..., R)``; ``prev_read_weights``: ``(..., R, N)``.
    Returns ``(..., N)``.  The product over the (small) R axis is unrolled
    so gradients stay exact even with zero factors.
    """
    num_reads = prev_read_weights.shape[-2]
    gates_col = ops.reshape(free_gates, free_gates.shape + (1,))
    factors = ops.sub(1.0, ops.mul(gates_col, prev_read_weights))
    result: Optional[Tensor] = None
    for r in range(num_reads):
        factor = factors[..., r, :]
        result = factor if result is None else ops.mul(result, factor)
    return result


def usage_vector(
    prev_usage: Tensor, prev_write_weights: Tensor, retention: Tensor
) -> Tensor:
    """``u = (u_prev + w_w - u_prev o w_w) o psi`` — HW.(2)."""
    increased = ops.sub(
        ops.add(prev_usage, prev_write_weights),
        ops.mul(prev_usage, prev_write_weights),
    )
    return ops.mul(increased, retention)


def allocation_weights(
    usage: Tensor, sort_order: Optional[np.ndarray] = None
) -> Tensor:
    """Allocation weighting over free slots — HW.(2)-(3).

    ``a[phi_j] = (1 - u[phi_j]) * prod_{k<j} u[phi_k]`` where ``phi`` sorts
    usage ascending.  ``sort_order`` overrides the permutation — this is
    the hook used by *usage skimming* (the hardware skips sorting the
    skimmed pool, so the permutation is only partially sorted; see
    :func:`repro.dnc.approx.skimmed_sort_order`).
    """
    usage = as_tensor(usage)
    # The DNC adds a small epsilon floor so products stay differentiable.
    safe_usage = ops.add(ops.mul(usage, 1.0 - _EPSILON), _EPSILON)
    if sort_order is None:
        sort_order = np.argsort(safe_usage.data, axis=-1, kind="stable")
    sorted_usage = ops.take_along_axis(safe_usage, sort_order, axis=-1)
    prod_before = ops.cumprod(sorted_usage, axis=-1, exclusive=True)
    sorted_alloc = ops.mul(ops.sub(1.0, sorted_usage), prod_before)
    inverse = np.argsort(sort_order, axis=-1, kind="stable")
    return ops.take_along_axis(sorted_alloc, inverse, axis=-1)


def write_weights(
    content_w: Tensor,
    allocation_w: Tensor,
    write_gate: Tensor,
    allocation_gate: Tensor,
) -> Tensor:
    """``w_w = g_w * (g_a * a + (1 - g_a) * c_w)`` — WM.

    ``content_w``/``allocation_w``: ``(..., N)``; gates: ``(...,)``.
    """
    gate_a = ops.reshape(allocation_gate, allocation_gate.shape + (1,))
    gate_w = ops.reshape(write_gate, write_gate.shape + (1,))
    mix = ops.add(
        ops.mul(gate_a, allocation_w), ops.mul(ops.sub(1.0, gate_a), content_w)
    )
    return ops.mul(gate_w, mix)


def erase_and_write(
    memory: Tensor, write_w: Tensor, erase: Tensor, write_vector: Tensor
) -> Tensor:
    """``M = M o (1 - w_w e^T) + w_w v^T`` — MW.

    ``memory``: ``(..., N, W)``; ``write_w``: ``(..., N)``;
    ``erase``/``write_vector``: ``(..., W)``.
    """
    w_col = ops.reshape(write_w, write_w.shape + (1,))
    erase_row = ops.reshape(erase, erase.shape[:-1] + (1, erase.shape[-1]))
    value_row = ops.reshape(
        write_vector, write_vector.shape[:-1] + (1, write_vector.shape[-1])
    )
    keep = ops.sub(1.0, ops.mul(w_col, erase_row))
    return ops.add(ops.mul(memory, keep), ops.mul(w_col, value_row))


def precedence_update(prev_precedence: Tensor, write_w: Tensor) -> Tensor:
    """``p = (1 - sum_i w_w[i]) p_prev + w_w`` — HR.(2)."""
    total = ops.sum(write_w, axis=-1, keepdims=True)
    return ops.add(ops.mul(ops.sub(1.0, total), prev_precedence), write_w)


def linkage_update(
    prev_linkage: Tensor, write_w: Tensor, prev_precedence: Tensor
) -> Tensor:
    """``L[i,j] = (1 - w[i] - w[j]) L_prev[i,j] + w[i] p_prev[j]`` — HR.(1).

    The diagonal is forced to zero (a slot cannot precede itself).
    ``prev_linkage``: ``(..., N, N)``.
    """
    n = write_w.shape[-1]
    w_col = ops.reshape(write_w, write_w.shape + (1,))
    w_row = ops.reshape(write_w, write_w.shape[:-1] + (1, n))
    p_row = ops.reshape(
        prev_precedence, prev_precedence.shape[:-1] + (1, n)
    )
    decay = ops.sub(ops.sub(1.0, w_col), w_row)
    updated = ops.add(ops.mul(decay, prev_linkage), ops.mul(w_col, p_row))
    off_diagonal = Tensor(1.0 - np.eye(n))
    return ops.mul(updated, off_diagonal)


def forward_backward_weights(
    linkage: Tensor, prev_read_weights: Tensor
) -> Tuple[Tensor, Tensor]:
    """``f_r = L w_r`` and ``b_r = L^T w_r`` for each read head — HR.(3).

    ``linkage``: ``(..., N, N)``; ``prev_read_weights``: ``(..., R, N)``.
    Returns two ``(..., R, N)`` tensors.
    """
    linkage_t = ops.transpose(linkage, _swap_last(linkage.ndim))
    forward = ops.matmul(prev_read_weights, linkage_t)
    backward = ops.matmul(prev_read_weights, linkage)
    return forward, backward


def read_weights(
    content_r: Tensor, forward: Tensor, backward: Tensor, read_modes: Tensor
) -> Tensor:
    """``w_r = m_1 b + m_2 c + m_3 f`` per head — RM.

    ``read_modes``: ``(..., R, 3)`` ordered ``[backward, content, forward]``.
    """
    m_backward = read_modes[..., 0:1]
    m_content = read_modes[..., 1:2]
    m_forward = read_modes[..., 2:3]
    return ops.add(
        ops.add(ops.mul(m_backward, backward), ops.mul(m_content, content_r)),
        ops.mul(m_forward, forward),
    )


def read_vectors(memory: Tensor, read_w: Tensor) -> Tensor:
    """``v_r = M^T w_r`` per head — MR.  Returns ``(..., R, W)``."""
    return ops.matmul(read_w, memory)


def _swap_last(ndim: int) -> Tuple[int, ...]:
    """Axes permutation swapping the last two dimensions."""
    axes = list(range(ndim))
    axes[-1], axes[-2] = axes[-2], axes[-1]
    return tuple(axes)


__all__ = [
    "content_weights",
    "retention_vector",
    "usage_vector",
    "allocation_weights",
    "write_weights",
    "erase_and_write",
    "precedence_update",
    "linkage_update",
    "forward_backward_weights",
    "read_weights",
    "read_vectors",
]
