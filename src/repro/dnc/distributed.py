"""DNC-D: the distributed DNC model (paper Section 5.1).

In DNC-D the external memory and *all* state memories are sharded across
``Nt`` tiles.  The controller sends each tile its own sub interface
vector; every tile executes the complete soft write / soft read purely on
its local shard (no inter-tile traffic, no global usage sort); and the
``Nt`` local read vectors are merged by a trainable weighted sum

    ``v_r = sum_i alpha_i * v_r_i``        (paper Eq. 4)

with ``alpha in [0, 1]`` determined by the LSTM (implemented as a softmax
head over the controller state, so the weights are trainable, bounded, and
sum to one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor
from repro.dnc.interface import InterfaceSpec
from repro.dnc.memory import AddressingOptions, MemoryState, MemoryUnit
from repro.dnc.model import DNC, DNCConfig
from repro.errors import ConfigError
from repro.nn.linear import Linear
from repro.nn.lstm import LSTMCell, LSTMState
from repro.nn.module import Module
from repro.utils.rng import SeedLike, new_rng


@dataclass
class DNCDConfig:
    """Hyper-parameters for DNC-D: a :class:`DNCConfig` plus a tile count.

    ``memory_size`` must divide evenly into ``num_tiles`` local shards.
    """

    input_size: int
    output_size: int
    memory_size: int = 32
    word_size: int = 8
    num_reads: int = 2
    hidden_size: int = 64
    num_tiles: int = 4

    def __post_init__(self):
        if self.num_tiles <= 0:
            raise ConfigError(f"num_tiles must be positive, got {self.num_tiles}")
        if self.memory_size % self.num_tiles != 0:
            raise ConfigError(
                f"memory_size ({self.memory_size}) must be divisible by "
                f"num_tiles ({self.num_tiles})"
            )

    @property
    def local_memory_size(self) -> int:
        """Rows per tile: ``n = N / Nt``."""
        return self.memory_size // self.num_tiles

    @property
    def interface_size(self) -> int:
        return InterfaceSpec(self.word_size, self.num_reads).size

    def to_dnc_config(self) -> DNCConfig:
        """The equivalent monolithic DNC configuration."""
        return DNCConfig(
            input_size=self.input_size,
            output_size=self.output_size,
            memory_size=self.memory_size,
            word_size=self.word_size,
            num_reads=self.num_reads,
            hidden_size=self.hidden_size,
        )


@dataclass
class DNCDState:
    """Controller state plus one :class:`MemoryState` per tile."""

    controller: LSTMState
    tiles: List[MemoryState]
    merged_reads: Tensor  # (..., R, W) previous merged read vectors

    def detach(self) -> "DNCDState":
        return DNCDState(
            self.controller.detach(),
            [tile.detach() for tile in self.tiles],
            self.merged_reads.detach(),
        )


class DNCD(Module):
    """Distributed DNC with trainable read-vector merge (paper Eq. 4)."""

    def __init__(
        self,
        config: DNCDConfig,
        options: Optional[AddressingOptions] = None,
        rng: SeedLike = None,
    ):
        super().__init__()
        rng = new_rng(rng)
        self.config = config
        self.tiles: List[MemoryUnit] = []
        for t in range(config.num_tiles):
            unit = MemoryUnit(
                config.local_memory_size,
                config.word_size,
                config.num_reads,
                options=options,
            )
            # Register each tile as a child module under a stable name.
            setattr(self, f"tile_{t}", unit)
            self.tiles.append(unit)

        controller_input = config.input_size + config.num_reads * config.word_size
        self.controller = LSTMCell(controller_input, config.hidden_size, rng=rng)
        # Sub interface vectors: one head per tile, emitted as one wide
        # linear layer and split (paper Figure 8: v_i_1 .. v_i_Nt).
        self.interface_layer = Linear(
            config.hidden_size, config.num_tiles * config.interface_size, rng=rng
        )
        # Trainable merge weights alpha, determined by the LSTM.
        self.merge_layer = Linear(config.hidden_size, config.num_tiles, rng=rng)
        output_input = config.hidden_size + config.num_reads * config.word_size
        self.output_layer = Linear(output_input, config.output_size, rng=rng)

    # ------------------------------------------------------------------
    def initial_state(self, batch_size: Optional[int] = None) -> DNCDState:
        lead = () if batch_size is None else (batch_size,)
        r, w = self.config.num_reads, self.config.word_size
        return DNCDState(
            controller=self.controller.initial_state(batch_size),
            tiles=[unit.initial_state(batch_size) for unit in self.tiles],
            merged_reads=Tensor(np.zeros(lead + (r, w))),
        )

    def step(self, x: Tensor, state: DNCDState) -> Tuple[Tensor, DNCDState]:
        """One timestep of distributed execution (paper Figure 8)."""
        read_flat = _flatten(state.merged_reads)
        controller_in = ops.concat([x, read_flat], axis=-1)
        hidden, controller_state = self.controller(controller_in, state.controller)

        interfaces_flat = self.interface_layer(hidden)
        alphas = ops.softmax(self.merge_layer(hidden), axis=-1)

        spec_size = self.config.interface_size
        new_tiles: List[MemoryState] = []
        local_reads: List[Tensor] = []
        for t, unit in enumerate(self.tiles):
            sub = interfaces_flat[..., t * spec_size : (t + 1) * spec_size]
            interface = unit.interface_spec.parse(sub)
            reads, tile_state = unit.step(state.tiles[t], interface)
            new_tiles.append(tile_state)
            local_reads.append(reads)

        merged = self._merge_reads(local_reads, alphas)
        output_in = ops.concat([hidden, _flatten(merged)], axis=-1)
        output = self.output_layer(output_in)
        new_state = DNCDState(controller_state, new_tiles, merged)
        return output, new_state

    def forward(
        self, inputs: Tensor, state: Optional[DNCDState] = None
    ) -> Tuple[Tensor, DNCDState]:
        """Run a whole ``(T, ..., input_size)`` sequence."""
        if state is None:
            batch = inputs.shape[1] if inputs.ndim == 3 else None
            state = self.initial_state(batch)
        outputs: List[Tensor] = []
        for t in range(inputs.shape[0]):
            y, state = self.step(inputs[t], state)
            outputs.append(y)
        return ops.stack(outputs, axis=0), state

    # ------------------------------------------------------------------
    def _merge_reads(self, local_reads: List[Tensor], alphas: Tensor) -> Tensor:
        """Weighted sum of per-tile read vectors (paper Eq. 4)."""
        merged: Optional[Tensor] = None
        for t, reads in enumerate(local_reads):
            alpha = alphas[..., t]
            alpha_b = ops.reshape(alpha, alpha.shape + (1, 1))
            term = ops.mul(alpha_b, reads)
            merged = term if merged is None else ops.add(merged, term)
        return merged

    # ------------------------------------------------------------------
    def init_from_dnc(self, dnc: DNC) -> None:
        """Warm-start from a trained monolithic :class:`DNC`.

        Controller and output weights are copied; each tile's interface
        head is initialized with the DNC's interface head so every tile
        starts with the global addressing behaviour, and the merge head
        starts uniform.  Used by the Figure 10 study to measure DNC-D
        degradation after a short fine-tune rather than a full retrain.
        """
        if dnc.config.word_size != self.config.word_size or (
            dnc.config.num_reads != self.config.num_reads
        ):
            raise ConfigError("DNC and DNC-D must share word_size and num_reads")
        if dnc.config.hidden_size != self.config.hidden_size or (
            dnc.config.input_size != self.config.input_size
        ):
            raise ConfigError("DNC and DNC-D must share controller dimensions")

        self.controller.load_state_dict(dnc.controller.state_dict())
        self.output_layer.load_state_dict(dnc.output_layer.state_dict())
        spec = self.config.interface_size
        for t in range(self.config.num_tiles):
            self.interface_layer.weight.data[:, t * spec : (t + 1) * spec] = (
                dnc.interface_layer.weight.data
            )
            self.interface_layer.bias.data[t * spec : (t + 1) * spec] = (
                dnc.interface_layer.bias.data
            )
        self.merge_layer.weight.data[:] = 0.0
        self.merge_layer.bias.data[:] = 0.0


def _flatten(read_vectors: Tensor) -> Tensor:
    """``(..., R, W) -> (..., R*W)``."""
    shape = read_vectors.shape
    return ops.reshape(read_vectors, shape[:-2] + (shape[-2] * shape[-1],))


__all__ = ["DNCD", "DNCDConfig", "DNCDState"]
