"""Approximation techniques from paper Section 5.2.

Usage skimming
--------------
The paper observes that the least significant usage entries have little
effect on the write allocation and proposes discarding the ``K`` smallest
entries from the sort, reducing sort and allocation complexity
proportionally.  Behaviourally we model the hardware exactly as built: the
skimmed pool (the K-fraction of slots with the smallest usage) is *not
sorted* — its members are emitted in index order ahead of the sorted
remainder — so the allocation product runs over a partially sorted
sequence.  For small ``K`` every pool member is nearly free and allocation
mass still lands on a nearly-free slot (small error); for large ``K`` the
pool swallows genuinely used slots and the index-order choice misallocates
(large error), reproducing the Figure 10 trend.

Softmax approximation
---------------------
A hybrid of piece-wise linear approximation (PLA) and a look-up table
(LUT): the input range is cut into a few segments, each approximated by an
affine function whose ``(slope, intercept)`` pair is stored in a LUT —
one multiply and one add per element, as in the paper.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_positive, check_probability


def skimmed_sort_order(usage: np.ndarray, skim_fraction: float) -> np.ndarray:
    """Partially sorted permutation modelling usage skimming.

    Returns, for each row of ``usage`` (last axis, length ``N``), a
    permutation consisting of the ``K = floor(skim_fraction * N)``
    smallest-usage indices in *index order* (unsorted — the hardware skips
    them) followed by the remaining indices sorted ascending by usage.
    ``skim_fraction=0`` degenerates to a full argsort.

    Fully vectorized over any leading dimensions: a batched ``(B, N)``
    usage is one ``argpartition`` plus one ``argsort`` call, never a
    Python loop over rows.
    """
    check_probability("skim_fraction", skim_fraction)
    usage = np.asarray(usage)
    n = usage.shape[-1]
    k = int(np.floor(skim_fraction * n))
    if k <= 1:
        return np.argsort(usage, axis=-1, kind="stable")

    flat = usage.reshape(-1, n)
    # The skimmed pool: the K smallest-usage slots of every row, emitted
    # in index order, NOT usage order — the hardware does not sort them.
    pool = np.sort(np.argpartition(flat, k - 1, axis=-1)[:, :k], axis=-1)
    rest_mask = np.ones(flat.shape, dtype=bool)
    np.put_along_axis(rest_mask, pool, False, axis=-1)
    # Row-major nonzero enumerates each row's survivors in ascending
    # index order, so the stable argsort below keeps ties index-ordered
    # exactly as the per-row formulation did.
    rest = np.nonzero(rest_mask)[1].reshape(flat.shape[0], n - k)
    rest_values = np.take_along_axis(flat, rest, axis=-1)
    rest = np.take_along_axis(
        rest, np.argsort(rest_values, axis=-1, kind="stable"), axis=-1
    )
    orders = np.concatenate([pool, rest], axis=-1).astype(np.int64, copy=False)
    return orders.reshape(usage.shape)


def skim_usage(usage: np.ndarray, skim_fraction: float) -> Tuple[np.ndarray, int]:
    """Return the skimmed sort order and the number of entries actually sorted.

    The second value feeds the hardware cycle model: the sorter processes
    the ``N - K`` unskimmed entries (``K = floor(skim_fraction * N)``).
    ``K <= 1`` disables skimming entirely (the degenerate pool is not
    worth a partition pass), so the full ``N`` entries are sorted.
    """
    usage = np.asarray(usage)
    n = usage.shape[-1]
    k = int(np.floor(skim_fraction * n))
    sorted_count = n - k if k > 1 else n
    return skimmed_sort_order(usage, skim_fraction), sorted_count


class SoftmaxApproximator:
    """PLA+LUT softmax: affine exp segments, 1 multiply + 1 add per element.

    Parameters
    ----------
    num_segments:
        Number of affine pieces (LUT entries).  The paper uses "a small
        number of line pieces"; 32 gives a worst-case exp error under 2 %
        with a 64-word LUT.
    input_range:
        Approximation domain ``[-input_range, 0]``.  Softmax inputs are
        max-shifted so they always fall in ``(-inf, 0]``; values below the
        range floor are flushed to 0 (their true exp is negligible).
    """

    def __init__(self, num_segments: int = 32, input_range: float = 12.0):
        check_positive("num_segments", num_segments)
        check_positive("input_range", input_range)
        self.num_segments = int(num_segments)
        self.input_range = float(input_range)
        edges = np.linspace(-self.input_range, 0.0, self.num_segments + 1)
        left, right = edges[:-1], edges[1:]
        exp_left, exp_right = np.exp(left), np.exp(right)
        # Chord interpolation per segment: exact at both segment endpoints.
        self._slopes = (exp_right - exp_left) / (right - left)
        self._intercepts = exp_left - self._slopes * left
        self._edges = edges

    # ------------------------------------------------------------------
    def exp(self, x: np.ndarray) -> np.ndarray:
        """Approximate ``exp(x)`` for ``x <= 0`` (clipped, LUT + affine).

        Floating inputs keep their dtype (the LUT itself stores float64
        coefficients; the affine evaluation rounds once on the way out).
        """
        x = np.asarray(x)
        if x.dtype not in (np.float32, np.float64):
            x = x.astype(np.float64)
        clipped = np.maximum(x, -self.input_range)
        segment = np.minimum(
            ((clipped + self.input_range) / self.input_range * self.num_segments).astype(int),
            self.num_segments - 1,
        )
        approx = self._slopes[segment] * clipped + self._intercepts[segment]
        # Below the domain floor the true exp is ~1e-7; flush to zero.
        return np.where(x < -self.input_range, 0.0, approx).astype(x.dtype, copy=False)

    def softmax(self, scores: np.ndarray, axis: int = -1) -> np.ndarray:
        """Approximate softmax (max-shifted, approx exp, normalized)."""
        scores = np.asarray(scores)
        if scores.dtype not in (np.float32, np.float64):
            scores = scores.astype(np.float64)
        shifted = scores - scores.max(axis=axis, keepdims=True)
        exped = self.exp(shifted)
        total = exped.sum(axis=axis, keepdims=True)
        # All-zero rows can only occur if every input underflowed; fall back
        # to uniform (matches the exact softmax limit under extreme shift).
        safe_total = np.where(total == 0.0, 1.0, total)
        uniform = np.asarray(1.0 / scores.shape[axis], dtype=scores.dtype)
        out = exped / safe_total
        return np.where(total == 0.0, uniform, out)

    # ------------------------------------------------------------------
    def max_exp_error(self, samples: int = 10_000) -> float:
        """Worst absolute error of :meth:`exp` over the domain."""
        xs = np.linspace(-self.input_range, 0.0, samples)
        return float(np.max(np.abs(self.exp(xs) - np.exp(xs))))

    def lut_cost_words(self) -> int:
        """LUT storage in 32-bit words: one (slope, intercept) pair per segment."""
        return 2 * self.num_segments

    def __repr__(self) -> str:
        return (
            f"SoftmaxApproximator(num_segments={self.num_segments}, "
            f"input_range={self.input_range})"
        )


__all__ = ["skimmed_sort_order", "skim_usage", "SoftmaxApproximator"]
