"""The full DNC: LSTM controller + memory unit (Graves et al., 2016).

The controller receives ``[x_t ; r_{t-1,1..R}]``, emits the interface
vector for the memory unit, and the model output combines the controller
hidden state with the fresh read vectors:
``y_t = W_y [h_t ; r_t]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor
from repro.dnc.interface import InterfaceSpec
from repro.dnc.memory import AddressingOptions, MemoryState, MemoryUnit
from repro.errors import ConfigError
from repro.nn.linear import Linear
from repro.nn.lstm import LSTMCell, LSTMState
from repro.nn.module import Module
from repro.utils.rng import SeedLike, new_rng


@dataclass
class DNCConfig:
    """Hyper-parameters of a DNC model.

    The paper's bAbI configuration is ``memory_size=1024, word_size=64,
    num_reads=4, hidden_size=256`` (Figure 4 caption); the defaults here
    are laptop-scale for training studies.
    """

    input_size: int
    output_size: int
    memory_size: int = 32
    word_size: int = 8
    num_reads: int = 2
    hidden_size: int = 64

    def __post_init__(self):
        for name in ("input_size", "output_size", "memory_size",
                     "word_size", "num_reads", "hidden_size"):
            value = getattr(self, name)
            if int(value) <= 0:
                raise ConfigError(f"{name} must be positive, got {value!r}")

    @property
    def interface_size(self) -> int:
        return InterfaceSpec(self.word_size, self.num_reads).size


@dataclass
class DNCState:
    """Controller + memory state carried across timesteps."""

    controller: LSTMState
    memory: MemoryState

    def detach(self) -> "DNCState":
        return DNCState(self.controller.detach(), self.memory.detach())


class DNC(Module):
    """Differentiable Neural Computer.

    Parameters
    ----------
    config:
        A :class:`DNCConfig`.
    options:
        Optional :class:`~repro.dnc.memory.AddressingOptions` to enable
        usage skimming / approximate softmax at inference.
    rng:
        Seed or generator for weight initialization.
    """

    def __init__(
        self,
        config: DNCConfig,
        options: Optional[AddressingOptions] = None,
        rng: SeedLike = None,
    ):
        super().__init__()
        rng = new_rng(rng)
        self.config = config
        self.memory_unit = MemoryUnit(
            config.memory_size, config.word_size, config.num_reads, options=options
        )
        controller_input = config.input_size + config.num_reads * config.word_size
        self.controller = LSTMCell(controller_input, config.hidden_size, rng=rng)
        self.interface_layer = Linear(
            config.hidden_size, config.interface_size, rng=rng
        )
        output_input = config.hidden_size + config.num_reads * config.word_size
        self.output_layer = Linear(output_input, config.output_size, rng=rng)

    # ------------------------------------------------------------------
    def initial_state(self, batch_size: Optional[int] = None) -> DNCState:
        return DNCState(
            self.controller.initial_state(batch_size),
            self.memory_unit.initial_state(batch_size),
        )

    def step(self, x: Tensor, state: DNCState) -> Tuple[Tensor, DNCState]:
        """One timestep: returns ``(y_t, new_state)``."""
        read_flat = _flatten_reads(state.memory.read_vectors)
        controller_in = ops.concat([x, read_flat], axis=-1)
        hidden, controller_state = self.controller(controller_in, state.controller)

        interface = self.memory_unit.interface_spec.parse(
            self.interface_layer(hidden)
        )
        read_vectors, memory_state = self.memory_unit.step(state.memory, interface)

        output_in = ops.concat([hidden, _flatten_reads(read_vectors)], axis=-1)
        output = self.output_layer(output_in)
        return output, DNCState(controller_state, memory_state)

    def forward(
        self, inputs: Tensor, state: Optional[DNCState] = None
    ) -> Tuple[Tensor, DNCState]:
        """Run a whole ``(T, ..., input_size)`` sequence."""
        if state is None:
            batch = inputs.shape[1] if inputs.ndim == 3 else None
            state = self.initial_state(batch)
        outputs: List[Tensor] = []
        for t in range(inputs.shape[0]):
            y, state = self.step(inputs[t], state)
            outputs.append(y)
        return ops.stack(outputs, axis=0), state


def _flatten_reads(read_vectors: Tensor) -> Tensor:
    """``(..., R, W) -> (..., R*W)``."""
    shape = read_vectors.shape
    return ops.reshape(read_vectors, shape[:-2] + (shape[-2] * shape[-1],))


__all__ = ["DNC", "DNCConfig", "DNCState"]
