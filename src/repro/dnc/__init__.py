"""Differentiable Neural Computer — functional model, distributed variant,
approximations, and the instrumented numpy reference.

Layout
------
* :mod:`repro.dnc.interface` — interface-vector codec (controller <-> memory
  unit, the ``v_i`` / ``v_r`` arrows of the paper's Figure 1/2).
* :mod:`repro.dnc.addressing` — the differentiable DNC kernels (content
  weighting, retention/usage/allocation, linkage/precedence, forward-
  backward), matching the taxonomy of the paper's Table 1.
* :mod:`repro.dnc.memory` — the memory unit: one soft-write + soft-read step.
* :mod:`repro.dnc.model` — the full DNC (LSTM controller + memory unit).
* :mod:`repro.dnc.distributed` — DNC-D (paper Section 5.1): per-tile local
  memory units with a trainable weighted read-vector merge.
* :mod:`repro.dnc.approx` — usage skimming and PLA+LUT softmax approximation
  (paper Section 5.2).
* :mod:`repro.dnc.numpy_ref` — inference-only, instrumented numpy DNC used
  for kernel profiling (Table 1 / Figure 4) and traffic generation.
"""

from repro.dnc.interface import Interface, InterfaceSpec
from repro.dnc.memory import MemoryState, MemoryUnit, AddressingOptions
from repro.dnc.model import DNC, DNCConfig
from repro.dnc.distributed import DNCD, DNCDConfig
from repro.dnc.approx import SoftmaxApproximator, skim_usage
from repro.dnc.numpy_ref import NumpyDNC, NumpyDNCConfig
from repro.dnc.instrumentation import KernelCategory, KernelRecorder

__all__ = [
    "Interface",
    "InterfaceSpec",
    "MemoryState",
    "MemoryUnit",
    "AddressingOptions",
    "DNC",
    "DNCConfig",
    "DNCD",
    "DNCDConfig",
    "SoftmaxApproximator",
    "skim_usage",
    "NumpyDNC",
    "NumpyDNCConfig",
    "KernelCategory",
    "KernelRecorder",
]
