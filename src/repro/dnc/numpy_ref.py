"""Inference-only, instrumented numpy DNC.

This is the "functional model of DNC in Python" the paper verified its RTL
against (Section 7).  It serves three roles:

1. **Kernel profiling** — every kernel is wrapped in
   :class:`~repro.dnc.instrumentation.KernelRecorder` timing/counting, which
   regenerates Table 1's access columns and the Figure 4 CPU breakdown.
2. **Reference semantics** — the tiled execution engine
   (:mod:`repro.core.engine`) reuses the module-level kernel functions on
   partitioned state and is tested for exact agreement with this model.
3. **Speed** — it skips the autodiff tape, so large (1024 x 64) profiling
   runs stay fast.

The kernel functions are exact numpy mirrors of
:mod:`repro.dnc.addressing`; the test suite asserts both paths agree to
float64 precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dnc.approx import SoftmaxApproximator, skimmed_sort_order
from repro.dnc.instrumentation import KernelRecorder
from repro.errors import ConfigError
from repro.utils.rng import SeedLike, new_rng

_EPSILON = 1e-6
_NORM_EPSILON = 1e-8

# ---------------------------------------------------------------------------
# Module-level numpy kernels (shared with the tiled engine)
# ---------------------------------------------------------------------------


def l2_normalize(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Unit-normalize along ``axis`` with an epsilon floor."""
    norms = np.sqrt((x * x).sum(axis=axis, keepdims=True) + _NORM_EPSILON)
    return x / norms


def exact_softmax(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = scores - scores.max(axis=axis, keepdims=True)
    exped = np.exp(shifted)
    return exped / exped.sum(axis=axis, keepdims=True)


def content_scores(memory: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Cosine similarity between memory rows and keys: ``(H, N)``."""
    mem_unit = l2_normalize(memory, axis=-1)
    key_unit = l2_normalize(keys, axis=-1)
    return key_unit @ mem_unit.T


def retention(free_gates: np.ndarray, prev_read_w: np.ndarray) -> np.ndarray:
    """``psi[i] = prod_r (1 - f_r w_r[r, i])``."""
    return np.prod(1.0 - free_gates[:, None] * prev_read_w, axis=0)


def usage_update(
    prev_usage: np.ndarray, prev_write_w: np.ndarray, psi: np.ndarray
) -> np.ndarray:
    return (prev_usage + prev_write_w - prev_usage * prev_write_w) * psi


def allocation_from_order(usage: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Allocation weighting given a (possibly partially sorted) order."""
    safe = usage * (1.0 - _EPSILON) + _EPSILON
    sorted_usage = safe[order]
    prod_before = np.concatenate([[1.0], np.cumprod(sorted_usage[:-1])])
    sorted_alloc = (1.0 - sorted_usage) * prod_before
    alloc = np.empty_like(sorted_alloc)
    alloc[order] = sorted_alloc
    return alloc


def write_weight_merge(
    content_w: np.ndarray, alloc_w: np.ndarray, g_w: float, g_a: float
) -> np.ndarray:
    return g_w * (g_a * alloc_w + (1.0 - g_a) * content_w)


def erase_write(
    memory: np.ndarray, write_w: np.ndarray, erase: np.ndarray, value: np.ndarray
) -> np.ndarray:
    keep = 1.0 - np.outer(write_w, erase)
    return memory * keep + np.outer(write_w, value)


def linkage_update(
    prev_linkage: np.ndarray, write_w: np.ndarray, prev_precedence: np.ndarray
) -> np.ndarray:
    n = write_w.shape[0]
    decay = 1.0 - write_w[:, None] - write_w[None, :]
    updated = decay * prev_linkage + np.outer(write_w, prev_precedence)
    updated[np.arange(n), np.arange(n)] = 0.0
    return updated


def precedence_update(prev_p: np.ndarray, write_w: np.ndarray) -> np.ndarray:
    return (1.0 - write_w.sum()) * prev_p + write_w


def forward_backward(
    linkage: np.ndarray, prev_read_w: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``f_r = L w_r``, ``b_r = L^T w_r`` for all R heads at once."""
    forward = prev_read_w @ linkage.T
    backward = prev_read_w @ linkage
    return forward, backward


def read_weight_merge(
    content_r: np.ndarray,
    forward: np.ndarray,
    backward: np.ndarray,
    read_modes: np.ndarray,
) -> np.ndarray:
    return (
        read_modes[:, 0:1] * backward
        + read_modes[:, 1:2] * content_r
        + read_modes[:, 2:3] * forward
    )


def read_vectors(memory: np.ndarray, read_w: np.ndarray) -> np.ndarray:
    return read_w @ memory


# ---------------------------------------------------------------------------
# Interface parsing (numpy)
# ---------------------------------------------------------------------------


def _oneplus(x: np.ndarray) -> np.ndarray:
    return 1.0 + np.log1p(np.exp(np.minimum(x, 30.0))) + np.maximum(x - 30.0, 0.0)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


@dataclass
class NumpyInterface:
    """Parsed numpy interface components (mirrors ``dnc.interface``)."""

    read_keys: np.ndarray  # (R, W)
    read_strengths: np.ndarray  # (R,)
    write_key: np.ndarray  # (W,)
    write_strength: float
    erase: np.ndarray  # (W,)
    write_vector: np.ndarray  # (W,)
    free_gates: np.ndarray  # (R,)
    allocation_gate: float
    write_gate: float
    read_modes: np.ndarray  # (R, 3)


def parse_interface(flat: np.ndarray, word_size: int, num_reads: int) -> NumpyInterface:
    """Split and squash a flat interface vector (numpy mirror)."""
    w, r = word_size, num_reads
    expected = w * r + 3 * w + 5 * r + 3
    if flat.shape[-1] != expected:
        raise ConfigError(
            f"interface length {flat.shape[-1]} does not match expected {expected}"
        )
    cursor = [0]

    def take(count: int) -> np.ndarray:
        piece = flat[cursor[0] : cursor[0] + count]
        cursor[0] += count
        return piece

    read_keys = take(r * w).reshape(r, w)
    read_strengths = _oneplus(take(r))
    write_key = take(w)
    write_strength = float(_oneplus(take(1))[0])
    erase = _sigmoid(take(w))
    write_vector = take(w)
    free_gates = _sigmoid(take(r))
    allocation_gate = float(_sigmoid(take(1))[0])
    write_gate = float(_sigmoid(take(1))[0])
    read_modes = exact_softmax(take(3 * r).reshape(r, 3), axis=-1)
    return NumpyInterface(
        read_keys,
        read_strengths,
        write_key,
        write_strength,
        erase,
        write_vector,
        free_gates,
        allocation_gate,
        write_gate,
        read_modes,
    )


# ---------------------------------------------------------------------------
# The instrumented model
# ---------------------------------------------------------------------------


@dataclass
class NumpyDNCConfig:
    """Configuration of the instrumented reference DNC.

    Defaults match the paper's profiling setup (Figure 4 caption):
    ``N x W = 1024 x 64``, 1-layer LSTM of size 256.
    """

    input_size: int = 64
    output_size: int = 64
    memory_size: int = 1024
    word_size: int = 64
    num_reads: int = 4
    hidden_size: int = 256
    skim_fraction: float = 0.0
    softmax_approx: Optional[SoftmaxApproximator] = None

    @property
    def interface_size(self) -> int:
        w, r = self.word_size, self.num_reads
        return w * r + 3 * w + 5 * r + 3


@dataclass
class NumpyDNCState:
    """Full inference state of the reference DNC."""

    memory: np.ndarray
    usage: np.ndarray
    precedence: np.ndarray
    linkage: np.ndarray
    write_w: np.ndarray
    read_w: np.ndarray
    read_vecs: np.ndarray
    lstm_h: np.ndarray
    lstm_c: np.ndarray


class NumpyDNC:
    """Instrumented, inference-only DNC with randomly initialized weights.

    Weight values do not matter for profiling (the dataflow is
    input-independent); a seed keeps runs reproducible.  The
    :attr:`recorder` accumulates per-kernel statistics across steps.
    """

    def __init__(self, config: NumpyDNCConfig, rng: SeedLike = 0):
        rng = new_rng(rng)
        self.config = config
        self.recorder = KernelRecorder()
        c = config
        controller_in = c.input_size + c.num_reads * c.word_size
        scale = 0.1
        self.w_x = scale * rng.standard_normal((controller_in, 4 * c.hidden_size))
        self.w_h = scale * rng.standard_normal((c.hidden_size, 4 * c.hidden_size))
        self.b = np.zeros(4 * c.hidden_size)
        self.w_if = scale * rng.standard_normal((c.hidden_size, c.interface_size))
        self.b_if = np.zeros(c.interface_size)
        self.w_y = scale * rng.standard_normal(
            (c.hidden_size + c.num_reads * c.word_size, c.output_size)
        )
        self.b_y = np.zeros(c.output_size)

    # ------------------------------------------------------------------
    def load_from_dnc(self, dnc) -> None:
        """Copy weights from a trained :class:`repro.dnc.model.DNC`.

        Used by the agreement tests: the instrumented numpy path and the
        autodiff path must produce bit-identical float64 outputs.
        """
        c = self.config
        model_cfg = dnc.config
        if (model_cfg.memory_size, model_cfg.word_size, model_cfg.num_reads,
                model_cfg.hidden_size) != (c.memory_size, c.word_size,
                                           c.num_reads, c.hidden_size):
            raise ConfigError("DNC configuration does not match NumpyDNCConfig")
        self.w_x = dnc.controller.w_x.data.copy()
        self.w_h = dnc.controller.w_h.data.copy()
        self.b = dnc.controller.bias.data.copy()
        self.w_if = dnc.interface_layer.weight.data.copy()
        self.b_if = dnc.interface_layer.bias.data.copy()
        self.w_y = dnc.output_layer.weight.data.copy()
        self.b_y = dnc.output_layer.bias.data.copy()

    # ------------------------------------------------------------------
    def initial_state(self) -> NumpyDNCState:
        c = self.config
        return NumpyDNCState(
            memory=np.zeros((c.memory_size, c.word_size)),
            usage=np.zeros(c.memory_size),
            precedence=np.zeros(c.memory_size),
            linkage=np.zeros((c.memory_size, c.memory_size)),
            write_w=np.zeros(c.memory_size),
            read_w=np.zeros((c.num_reads, c.memory_size)),
            read_vecs=np.zeros((c.num_reads, c.word_size)),
            lstm_h=np.zeros(c.hidden_size),
            lstm_c=np.zeros(c.hidden_size),
        )

    def _softmax(self, scores: np.ndarray, axis: int = -1) -> np.ndarray:
        if self.config.softmax_approx is not None:
            return self.config.softmax_approx.softmax(scores, axis=axis)
        return exact_softmax(scores, axis=axis)

    # ------------------------------------------------------------------
    def step(self, x: np.ndarray, state: NumpyDNCState) -> Tuple[np.ndarray, NumpyDNCState]:
        """One instrumented timestep; returns ``(y, new_state)``."""
        c = self.config
        n, w, r, h = c.memory_size, c.word_size, c.num_reads, c.hidden_size
        rec = self.recorder

        # --- Controller -------------------------------------------------
        controller_in = np.concatenate([x, state.read_vecs.reshape(-1)])
        lstm_ops = 2 * (controller_in.size + h) * 4 * h
        with rec.measure("lstm", ops=lstm_ops):
            gates = controller_in @ self.w_x + state.lstm_h @ self.w_h + self.b
            i_g = _sigmoid(gates[0 * h : 1 * h])
            f_g = _sigmoid(gates[1 * h : 2 * h])
            g_g = np.tanh(gates[2 * h : 3 * h])
            o_g = _sigmoid(gates[3 * h : 4 * h])
            lstm_c = f_g * state.lstm_c + i_g * g_g
            lstm_h = o_g * np.tanh(lstm_c)
            interface_flat = lstm_h @ self.w_if + self.b_if
        interface = parse_interface(interface_flat, w, r)

        # --- Soft write ---------------------------------------------------
        # Normalize: rows of M and the write key (CW.1).
        with rec.measure("normalize", ops=2 * n * w + 2 * w, ext_mem=n * w, state_mem=w):
            mem_unit = l2_normalize(state.memory)
            wkey_unit = l2_normalize(interface.write_key)
        # Similarity + softmax (CW.2).
        with rec.measure("similarity", ops=2 * n * w + 5 * n, ext_mem=n * w, state_mem=w):
            scores = mem_unit @ wkey_unit
            content_w = self._softmax(interface.write_strength * scores)

        with rec.measure("retention", ops=2 * r * n, state_mem=r * n):
            psi = retention(interface.free_gates, state.read_w)
        with rec.measure("usage", ops=4 * n, state_mem=2 * n):
            usage = usage_update(state.usage, state.write_w, psi)
        with rec.measure(
            "usage_sort", ops=int(n * max(np.log2(n), 1.0)), state_mem=n
        ):
            if c.skim_fraction > 0:
                order = skimmed_sort_order(usage, c.skim_fraction)
            else:
                order = np.argsort(usage, kind="stable")
        with rec.measure("allocation", ops=3 * n, state_mem=n):
            alloc = allocation_from_order(usage, order)
        with rec.measure("write_weight_merge", ops=4 * n, state_mem=n):
            write_w = write_weight_merge(
                content_w, alloc, interface.write_gate, interface.allocation_gate
            )
        with rec.measure(
            "memory_write", ops=4 * n * w, ext_mem=2 * n * w, state_mem=n
        ):
            memory = erase_write(
                state.memory, write_w, interface.erase, interface.write_vector
            )

        with rec.measure("linkage", ops=4 * n * n, state_mem=2 * n * n):
            linkage = linkage_update(state.linkage, write_w, state.precedence)
        with rec.measure("precedence", ops=3 * n, state_mem=2 * n):
            precedence = precedence_update(state.precedence, write_w)

        # --- Soft read ----------------------------------------------------
        with rec.measure(
            "normalize", ops=2 * n * w + 2 * r * w, ext_mem=n * w, state_mem=r * w
        ):
            mem_unit = l2_normalize(memory)
            rkey_unit = l2_normalize(interface.read_keys)
        with rec.measure(
            "similarity", ops=2 * r * n * w + 5 * r * n, ext_mem=n * w, state_mem=r * w
        ):
            rscores = rkey_unit @ mem_unit.T
            content_r = self._softmax(
                interface.read_strengths[:, None] * rscores, axis=-1
            )
        with rec.measure(
            "forward_backward", ops=4 * r * n * n, state_mem=2 * n * n
        ):
            fwd, bwd = forward_backward(linkage, state.read_w)
        with rec.measure("read_weight_merge", ops=5 * r * n, state_mem=r * n):
            read_w = read_weight_merge(content_r, fwd, bwd, interface.read_modes)
        with rec.measure(
            "memory_read", ops=2 * r * n * w, ext_mem=n * w, state_mem=r * n
        ):
            read_vecs = read_vectors(memory, read_w)

        # --- Output -------------------------------------------------------
        with rec.measure("lstm", ops=2 * (h + r * w) * c.output_size):
            output_in = np.concatenate([lstm_h, read_vecs.reshape(-1)])
            y = output_in @ self.w_y + self.b_y

        new_state = NumpyDNCState(
            memory=memory,
            usage=usage,
            precedence=precedence,
            linkage=linkage,
            write_w=write_w,
            read_w=read_w,
            read_vecs=read_vecs,
            lstm_h=lstm_h,
            lstm_c=lstm_c,
        )
        return y, new_state

    # ------------------------------------------------------------------
    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Run a ``(T, input_size)`` sequence; returns ``(T, output_size)``."""
        state = self.initial_state()
        outputs = np.empty((inputs.shape[0], self.config.output_size))
        for t in range(inputs.shape[0]):
            outputs[t], state = self.step(inputs[t], state)
        return outputs


__all__ = [
    "NumpyDNC",
    "NumpyDNCConfig",
    "NumpyDNCState",
    "NumpyInterface",
    "parse_interface",
    "l2_normalize",
    "exact_softmax",
    "content_scores",
    "retention",
    "usage_update",
    "allocation_from_order",
    "write_weight_merge",
    "erase_write",
    "linkage_update",
    "precedence_update",
    "forward_backward",
    "read_weight_merge",
    "read_vectors",
]
