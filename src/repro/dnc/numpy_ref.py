"""Inference-only, instrumented numpy DNC.

This is the "functional model of DNC in Python" the paper verified its RTL
against (Section 7).  It serves three roles:

1. **Kernel profiling** — every kernel is wrapped in
   :class:`~repro.dnc.instrumentation.KernelRecorder` timing/counting, which
   regenerates Table 1's access columns and the Figure 4 CPU breakdown.
2. **Reference semantics** — the tiled execution engine
   (:mod:`repro.core.engine`) reuses the module-level kernel functions on
   partitioned state and is tested for exact agreement with this model.
3. **Speed** — it skips the autodiff tape, so large (1024 x 64) profiling
   runs stay fast.

The kernel functions are exact numpy mirrors of
:mod:`repro.dnc.addressing`; the test suite asserts both paths agree to
float64 precision.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dnc.approx import SoftmaxApproximator, skimmed_sort_order
from repro.dnc.instrumentation import KernelRecorder
from repro.errors import ConfigError
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import (
    DTYPE_CHOICES,
    EXTENDED_DTYPE_CHOICES,
    STORAGE_DTYPES,
    check_in,
)

_EPSILON = 1e-6
_NORM_EPSILON = 1e-8

# ---------------------------------------------------------------------------
# Module-level numpy kernels (shared with the tiled engine)
#
# Every kernel is *shape-polymorphic*: the documented unbatched shapes may
# carry arbitrary leading dimensions (a batch ``B``, or the tiled engine's
# ``(B, Nt)`` shard stack) and the kernel vectorizes over them.  The 1-D
# forms compute exactly what they always did.
# ---------------------------------------------------------------------------


def l2_normalize(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Unit-normalize along ``axis`` with an epsilon floor."""
    norms = np.sqrt((x * x).sum(axis=axis, keepdims=True) + _NORM_EPSILON)
    return x / norms


def exact_softmax(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = scores - scores.max(axis=axis, keepdims=True)
    exped = np.exp(shifted)
    return exped / exped.sum(axis=axis, keepdims=True)


def content_scores(memory: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Cosine similarity between memory rows and keys: ``(..., H, N)``."""
    mem_unit = l2_normalize(memory, axis=-1)
    key_unit = l2_normalize(keys, axis=-1)
    return key_unit @ np.swapaxes(mem_unit, -1, -2)


def retention(free_gates: np.ndarray, prev_read_w: np.ndarray) -> np.ndarray:
    """``psi[i] = prod_r (1 - f_r w_r[r, i])`` for ``(..., R)``/``(..., R, N)``."""
    return np.prod(1.0 - free_gates[..., :, None] * prev_read_w, axis=-2)


def usage_update(
    prev_usage: np.ndarray, prev_write_w: np.ndarray, psi: np.ndarray
) -> np.ndarray:
    return (prev_usage + prev_write_w - prev_usage * prev_write_w) * psi


def allocation_from_order(usage: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Allocation weighting given a (possibly partially sorted) order.

    ``usage`` and ``order`` are ``(..., N)``; the cumulative free-space
    product runs along the last axis of every leading slice independently.
    """
    safe = usage * (1.0 - _EPSILON) + _EPSILON
    sorted_usage = np.take_along_axis(safe, order, axis=-1)
    ones = np.ones(sorted_usage.shape[:-1] + (1,), dtype=sorted_usage.dtype)
    prod_before = np.concatenate(
        [ones, np.cumprod(sorted_usage[..., :-1], axis=-1)], axis=-1
    )
    sorted_alloc = (1.0 - sorted_usage) * prod_before
    alloc = np.empty_like(sorted_alloc)
    np.put_along_axis(alloc, order, sorted_alloc, axis=-1)
    return alloc


def write_weight_merge(
    content_w: np.ndarray, alloc_w: np.ndarray, g_w, g_a
) -> np.ndarray:
    """Gates are scalars, or broadcastable arrays under batching."""
    return g_w * (g_a * alloc_w + (1.0 - g_a) * content_w)


def erase_write(
    memory: np.ndarray, write_w: np.ndarray, erase: np.ndarray, value: np.ndarray
) -> np.ndarray:
    """``(..., N, W)`` memory update; ``erase``/``value`` broadcast to it.

    Computed as ``memory * (1 - w x e) + w x v`` with in-place passes —
    batched, the full-size temporaries otherwise dominate the kernel.
    """
    w_col = write_w[..., :, None]
    keep = np.multiply(w_col, erase[..., None, :])
    np.subtract(1.0, keep, out=keep)
    keep *= memory
    keep += w_col * value[..., None, :]
    return keep


def linkage_update(
    prev_linkage: np.ndarray, write_w: np.ndarray, prev_precedence: np.ndarray
) -> np.ndarray:
    n = write_w.shape[-1]
    decay = 1.0 - write_w[..., :, None] - write_w[..., None, :]
    updated = decay * prev_linkage + (
        write_w[..., :, None] * prev_precedence[..., None, :]
    )
    updated[..., np.arange(n), np.arange(n)] = 0.0
    return updated


def precedence_update(prev_p: np.ndarray, write_w: np.ndarray) -> np.ndarray:
    return (1.0 - write_w.sum(axis=-1, keepdims=True)) * prev_p + write_w


def forward_backward(
    linkage: np.ndarray, prev_read_w: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``f_r = L w_r``, ``b_r = L^T w_r`` for all R heads at once."""
    forward = prev_read_w @ np.swapaxes(linkage, -1, -2)
    backward = prev_read_w @ linkage
    return forward, backward


def read_weight_merge(
    content_r: np.ndarray,
    forward: np.ndarray,
    backward: np.ndarray,
    read_modes: np.ndarray,
) -> np.ndarray:
    return (
        read_modes[..., 0:1] * backward
        + read_modes[..., 1:2] * content_r
        + read_modes[..., 2:3] * forward
    )


def read_vectors(memory: np.ndarray, read_w: np.ndarray) -> np.ndarray:
    return read_w @ memory


# ---------------------------------------------------------------------------
# Interface parsing (numpy)
# ---------------------------------------------------------------------------


def _oneplus(x: np.ndarray) -> np.ndarray:
    return 1.0 + np.log1p(np.exp(np.minimum(x, 30.0))) + np.maximum(x - 30.0, 0.0)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


@dataclass
class NumpyInterface:
    """Parsed numpy interface components (mirrors ``dnc.interface``).

    Unbatched, the shapes are as annotated and the three gates are Python
    floats.  With a leading batch dimension (``flat`` of shape ``(B, L)``)
    every field gains the leading ``B`` and the gates become ``(B, 1)``
    arrays so they broadcast against per-slot weightings.
    """

    read_keys: np.ndarray  # (R, W)
    read_strengths: np.ndarray  # (R,)
    write_key: np.ndarray  # (W,)
    write_strength: float  # or (B, 1)
    erase: np.ndarray  # (W,)
    write_vector: np.ndarray  # (W,)
    free_gates: np.ndarray  # (R,)
    allocation_gate: float  # or (B, 1)
    write_gate: float  # or (B, 1)
    read_modes: np.ndarray  # (R, 3)


def parse_interface(flat: np.ndarray, word_size: int, num_reads: int) -> NumpyInterface:
    """Split and squash a flat interface vector (numpy mirror).

    ``flat`` is ``(L,)`` or batched ``(..., L)``; fields are split along
    the last axis and keep the leading dimensions.
    """
    w, r = word_size, num_reads
    expected = w * r + 3 * w + 5 * r + 3
    if flat.shape[-1] != expected:
        raise ConfigError(
            f"interface length {flat.shape[-1]} does not match expected {expected}"
        )
    lead = flat.shape[:-1]
    cursor = [0]

    def take(count: int) -> np.ndarray:
        piece = flat[..., cursor[0] : cursor[0] + count]
        cursor[0] += count
        return piece

    read_keys = take(r * w).reshape(lead + (r, w))
    read_strengths = _oneplus(take(r))
    write_key = take(w)
    write_strength = _oneplus(take(1))
    erase = _sigmoid(take(w))
    write_vector = take(w)
    free_gates = _sigmoid(take(r))
    allocation_gate = _sigmoid(take(1))
    write_gate = _sigmoid(take(1))
    read_modes = exact_softmax(take(3 * r).reshape(lead + (r, 3)), axis=-1)
    if not lead:  # unbatched: gates are plain floats, as ever
        write_strength = float(write_strength[0])
        allocation_gate = float(allocation_gate[0])
        write_gate = float(write_gate[0])
    return NumpyInterface(
        read_keys,
        read_strengths,
        write_key,
        write_strength,
        erase,
        write_vector,
        free_gates,
        allocation_gate,
        write_gate,
        read_modes,
    )


# ---------------------------------------------------------------------------
# The instrumented model
# ---------------------------------------------------------------------------


@dataclass
class NumpyDNCConfig:
    """Configuration of the instrumented reference DNC.

    Defaults match the paper's profiling setup (Figure 4 caption):
    ``N x W = 1024 x 64``, 1-layer LSTM of size 256.
    """

    input_size: int = 64
    output_size: int = 64
    memory_size: int = 1024
    word_size: int = 64
    num_reads: int = 4
    hidden_size: int = 256
    skim_fraction: float = 0.0
    softmax_approx: Optional[SoftmaxApproximator] = None
    #: Numeric policy for weights, state, and kernel buffers.  ``float64``
    #: is the exact reference mode; ``float32`` trades precision for
    #: memory bandwidth on the N^2 linkage kernels.
    dtype: str = "float64"

    def __post_init__(self):
        # Fail at construction, not at the first np_dtype access deep in
        # a step; np_dtype itself stays check-free on the hot path.
        check_in("dtype", self.dtype, EXTENDED_DTYPE_CHOICES)

    @property
    def interface_size(self) -> int:
        w, r = self.word_size, self.num_reads
        return w * r + 3 * w + 5 * r + 3

    @property
    def np_dtype(self) -> np.dtype:
        # Storage dtype: the reduced-precision compute dtypes store as
        # float32 (numpy has no bfloat16; see STORAGE_DTYPES).
        return np.dtype(STORAGE_DTYPES[self.dtype])


@dataclass
class NumpyDNCState:
    """Full inference state of the reference DNC.

    Unbatched states hold the canonical shapes (``memory (N, W)``,
    ``usage (N,)``, ...); batched states carry a leading batch dimension
    on every field (``memory (B, N, W)``, ``usage (B, N)``, ...).
    """

    memory: np.ndarray
    usage: np.ndarray
    precedence: np.ndarray
    linkage: np.ndarray
    write_w: np.ndarray
    read_w: np.ndarray
    read_vecs: np.ndarray
    lstm_h: np.ndarray
    lstm_c: np.ndarray

    #: Field names in declaration order; the stack/unstack helpers and the
    #: serving layer's gather/scatter iterate this rather than hard-coding
    #: the state layout twice.
    FIELDS = (
        "memory", "usage", "precedence", "linkage", "write_w",
        "read_w", "read_vecs", "lstm_h", "lstm_c",
    )

    @property
    def batch_size(self) -> Optional[int]:
        """Leading batch dimension, or ``None`` for an unbatched state."""
        return None if self.usage.ndim == 1 else self.usage.shape[0]

    @property
    def nbytes(self) -> int:
        """Total bytes held across all state fields."""
        return sum(getattr(self, name).nbytes for name in self.FIELDS)

    @property
    def row_nbytes(self) -> int:
        """Bytes of one batch row (one session's full recurrent context).

        For an unbatched state this is simply :attr:`nbytes`.
        """
        b = self.batch_size
        return self.nbytes if b is None else self.nbytes // b

    def copy(self) -> "NumpyDNCState":
        """Deep copy: every field owns a fresh contiguous array."""
        return type(self)(**{
            name: getattr(self, name).copy() for name in self.FIELDS
        })

    # ------------------------------------------------------------------
    # Checkpoint serialization (the serving layer's migration primitive)
    # ------------------------------------------------------------------

    #: ``to_bytes`` wire format: magic, little-endian uint16 version +
    #: uint32 header length, a JSON header recording every field's dtype
    #: and shape, then the raw C-order field bytes in header order.
    BYTES_MAGIC = b"HIMASTATE"
    BYTES_VERSION = 1

    def to_bytes(self) -> bytes:
        """Serialize the state to a self-describing byte string.

        The round trip through :meth:`from_bytes` is **bitwise** and
        dtype-preserving for any dtype policy and for batched and
        unbatched states alike — the payload is the exact C-order bytes
        of every field, prefixed with a versioned header, so a
        checkpoint taken on one engine restores bit-identically on any
        other engine with the same configuration (the session-migration
        contract of :mod:`repro.serve`).
        """
        header = json.dumps({
            "fields": {
                name: [getattr(self, name).dtype.str,
                       list(getattr(self, name).shape)]
                for name in self.FIELDS
            },
        }).encode("utf-8")
        parts = [
            self.BYTES_MAGIC,
            struct.pack("<HI", self.BYTES_VERSION, len(header)),
            header,
        ]
        parts.extend(
            np.ascontiguousarray(getattr(self, name)).tobytes()
            for name in self.FIELDS
        )
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "NumpyDNCState":
        """Reconstruct a state serialized by :meth:`to_bytes`.

        Every returned field owns a fresh contiguous array (the payload
        can be dropped immediately).  Raises
        :class:`~repro.errors.ConfigError` for a payload that is not a
        state checkpoint: wrong magic, unknown version, a truncated or
        oversized body, or a header whose field set does not match
        :attr:`FIELDS`.
        """
        magic_len = len(cls.BYTES_MAGIC)
        prefix_len = magic_len + struct.calcsize("<HI")
        if len(payload) < prefix_len or payload[:magic_len] != cls.BYTES_MAGIC:
            raise ConfigError("from_bytes: payload is not a state checkpoint")
        version, header_len = struct.unpack(
            "<HI", payload[magic_len:prefix_len]
        )
        if version != cls.BYTES_VERSION:
            raise ConfigError(
                f"from_bytes: unsupported checkpoint version {version} "
                f"(this build reads version {cls.BYTES_VERSION})"
            )
        body_start = prefix_len + header_len
        if len(payload) < body_start:
            raise ConfigError("from_bytes: truncated checkpoint header")
        try:
            header = json.loads(payload[prefix_len:body_start])
            fields = header["fields"]
        except (ValueError, KeyError, TypeError):
            raise ConfigError(
                "from_bytes: malformed checkpoint header"
            ) from None
        if tuple(fields) != cls.FIELDS:
            raise ConfigError(
                f"from_bytes: checkpoint fields {tuple(fields)} do not "
                f"match the state layout {cls.FIELDS}"
            )
        arrays = {}
        offset = body_start
        for name, (dtype_str, shape) in fields.items():
            dtype = np.dtype(dtype_str)
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            end = offset + count * dtype.itemsize
            if end > len(payload):
                raise ConfigError(
                    f"from_bytes: truncated checkpoint body at field {name!r}"
                )
            arrays[name] = np.frombuffer(
                payload, dtype=dtype, count=count, offset=offset
            ).reshape(shape).copy()
            offset = end
        if offset != len(payload):
            raise ConfigError(
                f"from_bytes: {len(payload) - offset} trailing bytes after "
                "the last checkpoint field"
            )
        return cls(**arrays)

    # ------------------------------------------------------------------
    def _require_batched(self, op: str) -> int:
        if self.batch_size is None:
            raise ConfigError(f"{op} expects a batched state")
        return self.batch_size

    def take_rows(self, idx: np.ndarray) -> "NumpyDNCState":
        """Copy batch rows ``idx`` (in the given order) into a new state.

        The vectorized gather behind the engine's masked step: one fancy
        index per field instead of a Python loop over sessions.  Rows in
        the result follow the order of ``idx`` exactly, and every field
        is a fresh copy (fancy indexing never returns a view).
        """
        self._require_batched("take_rows")
        return type(self)(**{
            name: getattr(self, name)[idx] for name in self.FIELDS
        })

    def write_rows(self, idx: np.ndarray, other: "NumpyDNCState") -> None:
        """Scatter ``other``'s rows into this state's rows ``idx`` in place.

        The inverse of :meth:`take_rows`: ``other`` row ``k`` lands in
        this state's row ``idx[k]``; all other rows are untouched (the
        masked-step guarantee for sessions sitting a tick out).
        """
        self._require_batched("write_rows")
        for name in self.FIELDS:
            getattr(self, name)[idx] = getattr(other, name)

    def assign_from(self, other: "NumpyDNCState") -> None:
        """Rebind every field reference to ``other``'s arrays (zero copy).

        Used by the dense masked-step fast path: the state *object* stays
        the stable handle sessions are pinned to (the arena), while the
        arrays swap to the freshly computed step outputs without any
        copy-back pass.
        """
        for name in self.FIELDS:
            setattr(self, name, getattr(other, name))

    # ------------------------------------------------------------------
    @classmethod
    def stack(cls, states: Sequence["NumpyDNCState"]) -> "NumpyDNCState":
        """Pack unbatched states into one batched state (leading axis ``K``).

        Every input must be unbatched and hold the same field shapes and
        dtypes; element ``i`` of the result is bitwise the ``i``-th input
        (``np.stack`` copies, so the batched state shares no memory with
        the inputs).  Raises :class:`~repro.errors.ConfigError` on an
        empty sequence, a batched input, or mismatched shapes/dtypes.
        """
        if not states:
            raise ConfigError("cannot stack an empty sequence of states")
        first = states[0]
        for i, state in enumerate(states):
            if state.batch_size is not None:
                raise ConfigError(
                    f"stack expects unbatched states; states[{i}] has "
                    f"batch_size={state.batch_size}"
                )
            for name in cls.FIELDS:
                a, b = getattr(first, name), getattr(state, name)
                if a.shape != b.shape or a.dtype != b.dtype:
                    raise ConfigError(
                        f"states[{i}].{name} has shape {b.shape} dtype "
                        f"{b.dtype}, expected {a.shape} {a.dtype}"
                    )
        return cls(**{
            name: np.stack([getattr(s, name) for s in states])
            for name in cls.FIELDS
        })

    def unstack(self) -> List["NumpyDNCState"]:
        """Split a batched state into ``B`` independent unbatched states.

        The inverse of :meth:`stack`: each returned state is a contiguous
        copy (it does not alias the batched buffers, so the batched state
        can be dropped without pinning ``B x N^2`` linkage arrays), and
        ``stack(batched.unstack())`` round-trips bitwise.  Raises
        :class:`~repro.errors.ConfigError` on an unbatched state.
        """
        if self.batch_size is None:
            raise ConfigError("unstack expects a batched state")
        # .copy() (not ascontiguousarray, which returns a *view* of an
        # already-contiguous slice) so per-session states never alias the
        # batched buffers.
        return [
            type(self)(**{
                name: getattr(self, name)[i].copy()
                for name in self.FIELDS
            })
            for i in range(self.batch_size)
        ]


class NumpyDNC:
    """Instrumented, inference-only DNC with randomly initialized weights.

    Weight values do not matter for profiling (the dataflow is
    input-independent); a seed keeps runs reproducible.  The
    :attr:`recorder` accumulates per-kernel statistics across steps.
    """

    def __init__(self, config: NumpyDNCConfig, rng: SeedLike = 0):
        rng = new_rng(rng)
        self.config = config
        self.recorder = KernelRecorder()
        c = config
        dt = c.np_dtype
        controller_in = c.input_size + c.num_reads * c.word_size
        scale = 0.1
        # Weights are drawn in float64 for seed-stable values, then cast
        # to the policy dtype: a float32 model holds the rounded float64
        # weights, so cross-dtype comparisons see the same parameters.
        self.w_x = (scale * rng.standard_normal(
            (controller_in, 4 * c.hidden_size))).astype(dt, copy=False)
        self.w_h = (scale * rng.standard_normal(
            (c.hidden_size, 4 * c.hidden_size))).astype(dt, copy=False)
        self.b = np.zeros(4 * c.hidden_size, dtype=dt)
        self.w_if = (scale * rng.standard_normal(
            (c.hidden_size, c.interface_size))).astype(dt, copy=False)
        self.b_if = np.zeros(c.interface_size, dtype=dt)
        self.w_y = (scale * rng.standard_normal(
            (c.hidden_size + c.num_reads * c.word_size, c.output_size)
        )).astype(dt, copy=False)
        self.b_y = np.zeros(c.output_size, dtype=dt)

    # ------------------------------------------------------------------
    def load_from_dnc(self, dnc) -> None:
        """Copy weights from a trained :class:`repro.dnc.model.DNC`.

        Used by the agreement tests: the instrumented numpy path and the
        autodiff path must produce bit-identical float64 outputs.
        """
        c = self.config
        model_cfg = dnc.config
        if (model_cfg.memory_size, model_cfg.word_size, model_cfg.num_reads,
                model_cfg.hidden_size) != (c.memory_size, c.word_size,
                                           c.num_reads, c.hidden_size):
            raise ConfigError("DNC configuration does not match NumpyDNCConfig")
        dt = c.np_dtype
        self.w_x = dnc.controller.w_x.data.astype(dt)
        self.w_h = dnc.controller.w_h.data.astype(dt)
        self.b = dnc.controller.bias.data.astype(dt)
        self.w_if = dnc.interface_layer.weight.data.astype(dt)
        self.b_if = dnc.interface_layer.bias.data.astype(dt)
        self.w_y = dnc.output_layer.weight.data.astype(dt)
        self.b_y = dnc.output_layer.bias.data.astype(dt)

    # ------------------------------------------------------------------
    def initial_state(self, batch_size: Optional[int] = None) -> NumpyDNCState:
        """Zero state; with ``batch_size`` every field gains a leading ``B``."""
        c = self.config
        dt = c.np_dtype
        lead = () if batch_size is None else (int(batch_size),)
        return NumpyDNCState(
            memory=np.zeros(lead + (c.memory_size, c.word_size), dtype=dt),
            usage=np.zeros(lead + (c.memory_size,), dtype=dt),
            precedence=np.zeros(lead + (c.memory_size,), dtype=dt),
            linkage=np.zeros(lead + (c.memory_size, c.memory_size), dtype=dt),
            write_w=np.zeros(lead + (c.memory_size,), dtype=dt),
            read_w=np.zeros(lead + (c.num_reads, c.memory_size), dtype=dt),
            read_vecs=np.zeros(lead + (c.num_reads, c.word_size), dtype=dt),
            lstm_h=np.zeros(lead + (c.hidden_size,), dtype=dt),
            lstm_c=np.zeros(lead + (c.hidden_size,), dtype=dt),
        )

    def _softmax(self, scores: np.ndarray, axis: int = -1) -> np.ndarray:
        if self.config.softmax_approx is not None:
            return self.config.softmax_approx.softmax(scores, axis=axis)
        return exact_softmax(scores, axis=axis)

    # ------------------------------------------------------------------
    def step(self, x: np.ndarray, state: NumpyDNCState) -> Tuple[np.ndarray, NumpyDNCState]:
        """One instrumented timestep; returns ``(y, new_state)``.

        ``x`` is ``(input_size,)``, or ``(B, input_size)`` with a matching
        batched ``state`` (see :meth:`initial_state`); the batched form
        vectorizes all kernels over the batch.  Inputs are cast to the
        configured dtype so a float32 model never silently upcasts.
        """
        x = np.asarray(x, dtype=self.config.np_dtype)
        if x.ndim == 2:
            return self._step_batched(x, state)
        c = self.config
        n, w, r, h = c.memory_size, c.word_size, c.num_reads, c.hidden_size
        rec = self.recorder

        # --- Controller -------------------------------------------------
        controller_in = np.concatenate([x, state.read_vecs.reshape(-1)])
        lstm_ops = 2 * (controller_in.size + h) * 4 * h
        with rec.measure("lstm", ops=lstm_ops):
            gates = controller_in @ self.w_x + state.lstm_h @ self.w_h + self.b
            i_g = _sigmoid(gates[0 * h : 1 * h])
            f_g = _sigmoid(gates[1 * h : 2 * h])
            g_g = np.tanh(gates[2 * h : 3 * h])
            o_g = _sigmoid(gates[3 * h : 4 * h])
            lstm_c = f_g * state.lstm_c + i_g * g_g
            lstm_h = o_g * np.tanh(lstm_c)
            interface_flat = lstm_h @ self.w_if + self.b_if
        interface = parse_interface(interface_flat, w, r)

        # --- Soft write ---------------------------------------------------
        # Normalize: rows of M and the write key (CW.1).
        with rec.measure("normalize", ops=2 * n * w + 2 * w, ext_mem=n * w, state_mem=w):
            mem_unit = l2_normalize(state.memory)
            wkey_unit = l2_normalize(interface.write_key)
        # Similarity + softmax (CW.2).
        with rec.measure("similarity", ops=2 * n * w + 5 * n, ext_mem=n * w, state_mem=w):
            scores = mem_unit @ wkey_unit
            content_w = self._softmax(interface.write_strength * scores)

        with rec.measure("retention", ops=2 * r * n, state_mem=r * n):
            psi = retention(interface.free_gates, state.read_w)
        with rec.measure("usage", ops=4 * n, state_mem=2 * n):
            usage = usage_update(state.usage, state.write_w, psi)
        with rec.measure(
            "usage_sort", ops=int(n * max(np.log2(n), 1.0)), state_mem=n
        ):
            if c.skim_fraction > 0:
                order = skimmed_sort_order(usage, c.skim_fraction)
            else:
                order = np.argsort(usage, kind="stable")
        with rec.measure("allocation", ops=3 * n, state_mem=n):
            alloc = allocation_from_order(usage, order)
        with rec.measure("write_weight_merge", ops=4 * n, state_mem=n):
            write_w = write_weight_merge(
                content_w, alloc, interface.write_gate, interface.allocation_gate
            )
        with rec.measure(
            "memory_write", ops=4 * n * w, ext_mem=2 * n * w, state_mem=n
        ):
            memory = erase_write(
                state.memory, write_w, interface.erase, interface.write_vector
            )

        with rec.measure("linkage", ops=4 * n * n, state_mem=2 * n * n):
            linkage = linkage_update(state.linkage, write_w, state.precedence)
        with rec.measure("precedence", ops=3 * n, state_mem=2 * n):
            precedence = precedence_update(state.precedence, write_w)

        # --- Soft read ----------------------------------------------------
        with rec.measure(
            "normalize", ops=2 * n * w + 2 * r * w, ext_mem=n * w, state_mem=r * w
        ):
            mem_unit = l2_normalize(memory)
            rkey_unit = l2_normalize(interface.read_keys)
        with rec.measure(
            "similarity", ops=2 * r * n * w + 5 * r * n, ext_mem=n * w, state_mem=r * w
        ):
            rscores = rkey_unit @ mem_unit.T
            content_r = self._softmax(
                interface.read_strengths[:, None] * rscores, axis=-1
            )
        with rec.measure(
            "forward_backward", ops=4 * r * n * n, state_mem=2 * n * n
        ):
            fwd, bwd = forward_backward(linkage, state.read_w)
        with rec.measure("read_weight_merge", ops=5 * r * n, state_mem=r * n):
            read_w = read_weight_merge(content_r, fwd, bwd, interface.read_modes)
        with rec.measure(
            "memory_read", ops=2 * r * n * w, ext_mem=n * w, state_mem=r * n
        ):
            read_vecs = read_vectors(memory, read_w)

        # --- Output -------------------------------------------------------
        with rec.measure("lstm", ops=2 * (h + r * w) * c.output_size):
            output_in = np.concatenate([lstm_h, read_vecs.reshape(-1)])
            y = output_in @ self.w_y + self.b_y

        new_state = NumpyDNCState(
            memory=memory,
            usage=usage,
            precedence=precedence,
            linkage=linkage,
            write_w=write_w,
            read_w=read_w,
            read_vecs=read_vecs,
            lstm_h=lstm_h,
            lstm_c=lstm_c,
        )
        return y, new_state

    # ------------------------------------------------------------------
    def _step_batched(
        self, x: np.ndarray, state: NumpyDNCState
    ) -> Tuple[np.ndarray, NumpyDNCState]:
        """Batched timestep: ``x (B, I)`` with a batched ``state``.

        Mirrors :meth:`step` kernel by kernel with every operation stacked
        over the batch; instrumentation counters scale by ``B`` (one
        logical kernel invocation processing ``B`` sequences).
        """
        c = self.config
        n, w, r, h = c.memory_size, c.word_size, c.num_reads, c.hidden_size
        b = x.shape[0]
        rec = self.recorder

        # --- Controller -------------------------------------------------
        controller_in = np.concatenate([x, state.read_vecs.reshape(b, -1)], axis=-1)
        lstm_ops = 2 * b * (controller_in.shape[-1] + h) * 4 * h
        with rec.measure("lstm", ops=lstm_ops):
            gates = controller_in @ self.w_x + state.lstm_h @ self.w_h + self.b
            i_g = _sigmoid(gates[..., 0 * h : 1 * h])
            f_g = _sigmoid(gates[..., 1 * h : 2 * h])
            g_g = np.tanh(gates[..., 2 * h : 3 * h])
            o_g = _sigmoid(gates[..., 3 * h : 4 * h])
            lstm_c = f_g * state.lstm_c + i_g * g_g
            lstm_h = o_g * np.tanh(lstm_c)
            interface_flat = lstm_h @ self.w_if + self.b_if
        interface = parse_interface(interface_flat, w, r)

        # --- Soft write ---------------------------------------------------
        with rec.measure(
            "normalize", ops=b * (2 * n * w + 2 * w), ext_mem=b * n * w,
            state_mem=b * w,
        ):
            mem_unit = l2_normalize(state.memory)
            wkey_unit = l2_normalize(interface.write_key)
        with rec.measure(
            "similarity", ops=b * (2 * n * w + 5 * n), ext_mem=b * n * w,
            state_mem=b * w,
        ):
            scores = (mem_unit @ wkey_unit[..., :, None])[..., 0]
            content_w = self._softmax(interface.write_strength * scores)

        with rec.measure("retention", ops=2 * b * r * n, state_mem=b * r * n):
            psi = retention(interface.free_gates, state.read_w)
        with rec.measure("usage", ops=4 * b * n, state_mem=2 * b * n):
            usage = usage_update(state.usage, state.write_w, psi)
        with rec.measure(
            "usage_sort", ops=int(b * n * max(np.log2(n), 1.0)), state_mem=b * n
        ):
            if c.skim_fraction > 0:
                order = skimmed_sort_order(usage, c.skim_fraction)
            else:
                order = np.argsort(usage, axis=-1, kind="stable")
        with rec.measure("allocation", ops=3 * b * n, state_mem=b * n):
            alloc = allocation_from_order(usage, order)
        with rec.measure("write_weight_merge", ops=4 * b * n, state_mem=b * n):
            write_w = write_weight_merge(
                content_w, alloc, interface.write_gate, interface.allocation_gate
            )
        with rec.measure(
            "memory_write", ops=4 * b * n * w, ext_mem=2 * b * n * w,
            state_mem=b * n,
        ):
            memory = erase_write(
                state.memory, write_w, interface.erase, interface.write_vector
            )

        with rec.measure("linkage", ops=4 * b * n * n, state_mem=2 * b * n * n):
            linkage = linkage_update(state.linkage, write_w, state.precedence)
        with rec.measure("precedence", ops=3 * b * n, state_mem=2 * b * n):
            precedence = precedence_update(state.precedence, write_w)

        # --- Soft read ----------------------------------------------------
        with rec.measure(
            "normalize", ops=b * (2 * n * w + 2 * r * w), ext_mem=b * n * w,
            state_mem=b * r * w,
        ):
            mem_unit = l2_normalize(memory)
            rkey_unit = l2_normalize(interface.read_keys)
        with rec.measure(
            "similarity", ops=b * (2 * r * n * w + 5 * r * n),
            ext_mem=b * n * w, state_mem=b * r * w,
        ):
            rscores = rkey_unit @ np.swapaxes(mem_unit, -1, -2)
            content_r = self._softmax(
                interface.read_strengths[..., None] * rscores, axis=-1
            )
        with rec.measure(
            "forward_backward", ops=4 * b * r * n * n, state_mem=2 * b * n * n
        ):
            fwd, bwd = forward_backward(linkage, state.read_w)
        with rec.measure("read_weight_merge", ops=5 * b * r * n, state_mem=b * r * n):
            read_w = read_weight_merge(content_r, fwd, bwd, interface.read_modes)
        with rec.measure(
            "memory_read", ops=2 * b * r * n * w, ext_mem=b * n * w,
            state_mem=b * r * n,
        ):
            read_vecs = read_vectors(memory, read_w)

        # --- Output -------------------------------------------------------
        with rec.measure("lstm", ops=2 * b * (h + r * w) * c.output_size):
            output_in = np.concatenate([lstm_h, read_vecs.reshape(b, -1)], axis=-1)
            y = output_in @ self.w_y + self.b_y

        new_state = NumpyDNCState(
            memory=memory,
            usage=usage,
            precedence=precedence,
            linkage=linkage,
            write_w=write_w,
            read_w=read_w,
            read_vecs=read_vecs,
            lstm_h=lstm_h,
            lstm_c=lstm_c,
        )
        return y, new_state

    # ------------------------------------------------------------------
    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Run a ``(T, input_size)`` sequence; returns ``(T, output_size)``."""
        state = self.initial_state()
        outputs = np.empty(
            (inputs.shape[0], self.config.output_size), dtype=self.config.np_dtype
        )
        for t in range(inputs.shape[0]):
            outputs[t], state = self.step(inputs[t], state)
        return outputs

    def run_batch(self, inputs: np.ndarray) -> np.ndarray:
        """Run ``(T, B, input_size)`` sequences; returns ``(T, B, output_size)``.

        All ``B`` sequences advance in lock-step through stacked kernels —
        the throughput path batch-of-1-equivalent to ``B`` separate
        :meth:`run` calls.
        """
        if inputs.ndim != 3 or inputs.shape[1] < 1:
            raise ConfigError(
                f"run_batch expects (T, B>=1, input_size) inputs, got {inputs.shape}"
            )
        steps, batch = inputs.shape[0], inputs.shape[1]
        state = self.initial_state(batch_size=batch)
        outputs = np.empty(
            (steps, batch, self.config.output_size), dtype=self.config.np_dtype
        )
        for t in range(steps):
            outputs[t], state = self.step(inputs[t], state)
        return outputs


__all__ = [
    "DTYPE_CHOICES",
    "NumpyDNC",
    "NumpyDNCConfig",
    "NumpyDNCState",
    "NumpyInterface",
    "parse_interface",
    "l2_normalize",
    "exact_softmax",
    "content_scores",
    "retention",
    "usage_update",
    "allocation_from_order",
    "write_weight_merge",
    "erase_write",
    "linkage_update",
    "precedence_update",
    "forward_backward",
    "read_weight_merge",
    "read_vectors",
]
