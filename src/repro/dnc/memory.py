"""The DNC memory unit: one soft-write + soft-read step.

:class:`MemoryUnit` owns no trainable parameters — it is pure dataflow
(paper Figure 2) — but is a :class:`~repro.nn.module.Module` so models can
compose it.  All state lives in the immutable :class:`MemoryState`; each
:meth:`MemoryUnit.step` returns a fresh state, which keeps the
backpropagation tape intact across timesteps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor
from repro.dnc import addressing
from repro.dnc.approx import SoftmaxApproximator, skimmed_sort_order
from repro.dnc.interface import Interface, InterfaceSpec
from repro.errors import ConfigError
from repro.nn.module import Module
from repro.utils.validation import check_positive, check_probability


@dataclass
class AddressingOptions:
    """Optional approximations (paper Section 5.2).

    ``skim_fraction``: fraction ``K`` of smallest usage entries excluded
    from the usage sort (0 disables).  ``softmax_approx``: a PLA+LUT
    approximator replacing the exact softmax in content weighting;
    inference-only (its output is detached from the tape).
    """

    skim_fraction: float = 0.0
    softmax_approx: Optional[SoftmaxApproximator] = None

    def __post_init__(self):
        check_probability("skim_fraction", self.skim_fraction)


@dataclass
class MemoryState:
    """All persistent memory-unit state (the paper's "state memories").

    Shapes (unbatched; a leading batch dimension is supported throughout):

    * ``memory``       — ``(N, W)`` external memory ``M``
    * ``usage``        — ``(N,)`` usage vector ``u``
    * ``precedence``   — ``(N,)`` precedence vector ``p``
    * ``linkage``      — ``(N, N)`` temporal linkage ``L``
    * ``write_weights``— ``(N,)`` previous write weighting ``w_w``
    * ``read_weights`` — ``(R, N)`` previous read weightings ``w_r``
    * ``read_vectors`` — ``(R, W)`` previous read vectors ``v_r``
    """

    memory: Tensor
    usage: Tensor
    precedence: Tensor
    linkage: Tensor
    write_weights: Tensor
    read_weights: Tensor
    read_vectors: Tensor

    def detach(self) -> "MemoryState":
        """Cut the tape (used for truncated BPTT)."""
        return MemoryState(
            self.memory.detach(),
            self.usage.detach(),
            self.precedence.detach(),
            self.linkage.detach(),
            self.write_weights.detach(),
            self.read_weights.detach(),
            self.read_vectors.detach(),
        )


class MemoryUnit(Module):
    """DNC external memory with content- and history-based addressing.

    Parameters
    ----------
    memory_size:
        Number of memory rows ``N``.
    word_size:
        Row width ``W``.
    num_reads:
        Number of parallel read heads ``R``.
    options:
        Optional :class:`AddressingOptions` enabling the Section 5.2
        approximations.
    """

    def __init__(
        self,
        memory_size: int,
        word_size: int,
        num_reads: int = 1,
        options: Optional[AddressingOptions] = None,
    ):
        super().__init__()
        check_positive("memory_size", memory_size)
        check_positive("word_size", word_size)
        check_positive("num_reads", num_reads)
        self.memory_size = memory_size
        self.word_size = word_size
        self.num_reads = num_reads
        self.options = options or AddressingOptions()
        self.interface_spec = InterfaceSpec(word_size, num_reads)

    # ------------------------------------------------------------------
    def initial_state(self, batch_size: Optional[int] = None) -> MemoryState:
        """Zeroed memory state (optionally batched)."""
        lead = () if batch_size is None else (batch_size,)
        n, w, r = self.memory_size, self.word_size, self.num_reads
        return MemoryState(
            memory=Tensor(np.zeros(lead + (n, w))),
            usage=Tensor(np.zeros(lead + (n,))),
            precedence=Tensor(np.zeros(lead + (n,))),
            linkage=Tensor(np.zeros(lead + (n, n))),
            write_weights=Tensor(np.zeros(lead + (n,))),
            read_weights=Tensor(np.zeros(lead + (r, n))),
            read_vectors=Tensor(np.zeros(lead + (r, w))),
        )

    # ------------------------------------------------------------------
    def step(
        self, state: MemoryState, interface: Interface
    ) -> Tuple[Tensor, MemoryState]:
        """One full soft-write + soft-read (paper Figure 2, left to right).

        Returns ``(read_vectors, new_state)`` with read vectors of shape
        ``(..., R, W)``.
        """
        # --- Soft write -------------------------------------------------
        # CW.(1)-(2): content-based write weighting on the previous memory.
        write_key = interface.write_key
        keys = write_key.reshape(write_key.shape[:-1] + (1, self.word_size))
        strength = interface.write_strength.reshape(
            interface.write_strength.shape + (1,)
        )
        content_w = addressing.content_weights(state.memory, keys, strength)
        content_w = content_w[..., 0, :]

        # HW.(1)-(3): retention -> usage -> (sort) -> allocation.
        retention = addressing.retention_vector(
            interface.free_gates, state.read_weights
        )
        usage = addressing.usage_vector(state.usage, state.write_weights, retention)
        sort_order = None
        if self.options.skim_fraction > 0.0:
            sort_order = skimmed_sort_order(usage.data, self.options.skim_fraction)
        allocation = addressing.allocation_weights(usage, sort_order=sort_order)

        # WM: merge content- and history-based write weightings.
        write_w = addressing.write_weights(
            content_w, allocation, interface.write_gate, interface.allocation_gate
        )

        # MW: erase + write the external memory.
        memory = addressing.erase_and_write(
            state.memory, write_w, interface.erase, interface.write_vector
        )

        # HR.(1)-(2): linkage and precedence track write order history.
        linkage = addressing.linkage_update(state.linkage, write_w, state.precedence)
        precedence = addressing.precedence_update(state.precedence, write_w)

        # --- Soft read ----------------------------------------------------
        # CR.(1)-(2) on the *updated* memory.
        content_r = self._content_read_weights(memory, interface)

        # HR.(3): forward/backward through the updated linkage.
        forward, backward = addressing.forward_backward_weights(
            linkage, state.read_weights
        )

        # RM + MR.
        read_w = addressing.read_weights(
            content_r, forward, backward, interface.read_modes
        )
        read_vecs = addressing.read_vectors(memory, read_w)

        new_state = MemoryState(
            memory=memory,
            usage=usage,
            precedence=precedence,
            linkage=linkage,
            write_weights=write_w,
            read_weights=read_w,
            read_vectors=read_vecs,
        )
        return read_vecs, new_state

    # ------------------------------------------------------------------
    def _content_read_weights(self, memory: Tensor, interface: Interface) -> Tensor:
        """Content read weighting, optionally with the approximate softmax."""
        if self.options.softmax_approx is None:
            return addressing.content_weights(
                memory, interface.read_keys, interface.read_strengths
            )
        # Inference-only path: compute scores exactly, replace the softmax
        # by the PLA+LUT approximation (detached from the tape).
        from repro.autodiff.functional import normalize

        mem_unit = normalize(memory, axis=-1).data
        key_unit = normalize(interface.read_keys, axis=-1).data
        similarity = key_unit @ np.swapaxes(mem_unit, -1, -2)
        scores = similarity * interface.read_strengths.data[..., None]
        return Tensor(self.options.softmax_approx.softmax(scores, axis=-1))

    def __repr__(self) -> str:
        return (
            f"MemoryUnit(N={self.memory_size}, W={self.word_size}, "
            f"R={self.num_reads})"
        )


__all__ = ["MemoryUnit", "MemoryState", "AddressingOptions"]
