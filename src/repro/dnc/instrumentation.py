"""Kernel-level instrumentation in the paper's Table 1 / Figure 4 taxonomy.

:class:`KernelRecorder` accumulates, per named kernel: call count,
arithmetic op count, external-memory accesses, state-memory accesses, and
wall-clock seconds.  Every kernel belongs to a :class:`KernelCategory`
(the five slices of the paper's Figure 4 pie charts).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, Mapping

from repro.errors import ConfigError


class KernelCategory(Enum):
    """Figure 4 runtime categories."""

    CONTENT_WEIGHTING = "content-based weighting"
    MEMORY_ACCESS = "write/read memory access"
    HIST_WRITE_WEIGHTING = "history-based write weighting"
    HIST_READ_WEIGHTING = "history-based read weighting"
    NN_LSTM = "nn (lstm)"


#: Canonical kernel -> category map (Table 1 rows plus the controller).
KERNEL_CATEGORIES: Mapping[str, KernelCategory] = {
    "normalize": KernelCategory.CONTENT_WEIGHTING,
    "similarity": KernelCategory.CONTENT_WEIGHTING,
    "memory_write": KernelCategory.MEMORY_ACCESS,
    "memory_read": KernelCategory.MEMORY_ACCESS,
    "retention": KernelCategory.HIST_WRITE_WEIGHTING,
    "usage": KernelCategory.HIST_WRITE_WEIGHTING,
    "usage_sort": KernelCategory.HIST_WRITE_WEIGHTING,
    "allocation": KernelCategory.HIST_WRITE_WEIGHTING,
    "write_weight_merge": KernelCategory.HIST_WRITE_WEIGHTING,
    "linkage": KernelCategory.HIST_READ_WEIGHTING,
    "precedence": KernelCategory.HIST_READ_WEIGHTING,
    "forward_backward": KernelCategory.HIST_READ_WEIGHTING,
    "read_weight_merge": KernelCategory.HIST_READ_WEIGHTING,
    "lstm": KernelCategory.NN_LSTM,
}


@dataclass
class KernelStats:
    """Accumulated statistics for one kernel."""

    calls: int = 0
    ops: int = 0
    ext_mem_accesses: int = 0
    state_mem_accesses: int = 0
    seconds: float = 0.0

    def merge(self, other: "KernelStats") -> None:
        self.calls += other.calls
        self.ops += other.ops
        self.ext_mem_accesses += other.ext_mem_accesses
        self.state_mem_accesses += other.state_mem_accesses
        self.seconds += other.seconds


class KernelRecorder:
    """Accumulates :class:`KernelStats` per kernel name."""

    def __init__(self):
        self.stats: Dict[str, KernelStats] = {}

    def _get(self, kernel: str) -> KernelStats:
        if kernel not in KERNEL_CATEGORIES:
            raise ConfigError(f"unknown kernel {kernel!r}")
        return self.stats.setdefault(kernel, KernelStats())

    def add(
        self,
        kernel: str,
        ops: int = 0,
        ext_mem: int = 0,
        state_mem: int = 0,
        seconds: float = 0.0,
    ) -> None:
        """Record one kernel invocation's counters."""
        entry = self._get(kernel)
        entry.calls += 1
        entry.ops += int(ops)
        entry.ext_mem_accesses += int(ext_mem)
        entry.state_mem_accesses += int(state_mem)
        entry.seconds += seconds

    @contextmanager
    def measure(
        self, kernel: str, ops: int = 0, ext_mem: int = 0, state_mem: int = 0
    ) -> Iterator[None]:
        """Time a block and record it against ``kernel``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.add(kernel, ops=ops, ext_mem=ext_mem, state_mem=state_mem,
                     seconds=elapsed)

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------
    def by_category(self, field_name: str = "seconds") -> Dict[KernelCategory, float]:
        """Sum one stats field per :class:`KernelCategory`."""
        totals: Dict[KernelCategory, float] = {cat: 0.0 for cat in KernelCategory}
        for kernel, stats in self.stats.items():
            totals[KERNEL_CATEGORIES[kernel]] += getattr(stats, field_name)
        return totals

    def category_fractions(self, field_name: str = "seconds") -> Dict[KernelCategory, float]:
        """Per-category share of the total (Figure 4 pie slices)."""
        totals = self.by_category(field_name)
        grand = sum(totals.values())
        if grand == 0:
            return {cat: 0.0 for cat in totals}
        return {cat: value / grand for cat, value in totals.items()}

    def total(self, field_name: str = "seconds") -> float:
        return sum(getattr(s, field_name) for s in self.stats.values())

    def reset(self) -> None:
        self.stats.clear()


__all__ = ["KernelCategory", "KernelStats", "KernelRecorder", "KERNEL_CATEGORIES"]
