"""Interface-vector codec between the controller and the memory unit.

At each timestep the LSTM controller emits a flat *interface vector*
``v_i`` (paper Figures 1-2).  :class:`InterfaceSpec` defines its layout and
:meth:`InterfaceSpec.parse` splits it into the named, squashed components
of :class:`Interface` exactly as in Graves et al. (2016):

===================  ==========  =======================================
component            size        squashing
===================  ==========  =======================================
read keys            R x W       (none)
read strengths       R           oneplus
write key            W           (none)
write strength       1           oneplus
erase vector         W           sigmoid
write vector         W           (none)
free gates           R           sigmoid
allocation gate      1           sigmoid
write gate           1           sigmoid
read modes           R x 3       softmax over the 3 modes
===================  ==========  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.autodiff import ops
from repro.autodiff.functional import oneplus
from repro.autodiff.tensor import Tensor
from repro.errors import ShapeError
from repro.utils.validation import check_positive


@dataclass
class Interface:
    """Parsed interface-vector components (all :class:`Tensor`).

    Shapes below are for the unbatched case; a leading batch dimension is
    preserved by :meth:`InterfaceSpec.parse`.
    """

    read_keys: Tensor  # (R, W)
    read_strengths: Tensor  # (R,)
    write_key: Tensor  # (W,)
    write_strength: Tensor  # ()
    erase: Tensor  # (W,)
    write_vector: Tensor  # (W,)
    free_gates: Tensor  # (R,)
    allocation_gate: Tensor  # ()
    write_gate: Tensor  # ()
    read_modes: Tensor  # (R, 3) rows sum to 1: [backward, content, forward]


class InterfaceSpec:
    """Layout of the flat interface vector for a ``(W, R)`` memory unit."""

    def __init__(self, word_size: int, num_reads: int):
        check_positive("word_size", word_size)
        check_positive("num_reads", num_reads)
        self.word_size = word_size
        self.num_reads = num_reads

    @property
    def size(self) -> int:
        """Total flat length: ``W*R + 3W + 5R + 3``."""
        w, r = self.word_size, self.num_reads
        return w * r + 3 * w + 5 * r + 3

    def _segments(self) -> Tuple[Tuple[str, int], ...]:
        w, r = self.word_size, self.num_reads
        return (
            ("read_keys", r * w),
            ("read_strengths", r),
            ("write_key", w),
            ("write_strength", 1),
            ("erase", w),
            ("write_vector", w),
            ("free_gates", r),
            ("allocation_gate", 1),
            ("write_gate", 1),
            ("read_modes", r * 3),
        )

    def parse(self, flat: Tensor) -> Interface:
        """Split and squash a flat interface tensor of shape ``(..., size)``."""
        if flat.shape[-1] != self.size:
            raise ShapeError(
                f"interface vector has length {flat.shape[-1]}, expected {self.size}"
            )
        w, r = self.word_size, self.num_reads
        lead = flat.shape[:-1]
        pieces = {}
        offset = 0
        for name, length in self._segments():
            pieces[name] = flat[..., offset : offset + length]
            offset += length

        read_keys = ops.reshape(pieces["read_keys"], lead + (r, w))
        read_modes = ops.softmax(
            ops.reshape(pieces["read_modes"], lead + (r, 3)), axis=-1
        )
        return Interface(
            read_keys=read_keys,
            read_strengths=oneplus(pieces["read_strengths"]),
            write_key=pieces["write_key"],
            write_strength=oneplus(ops.reshape(pieces["write_strength"], lead + ())),
            erase=ops.sigmoid(pieces["erase"]),
            write_vector=pieces["write_vector"],
            free_gates=ops.sigmoid(pieces["free_gates"]),
            allocation_gate=ops.sigmoid(
                ops.reshape(pieces["allocation_gate"], lead + ())
            ),
            write_gate=ops.sigmoid(ops.reshape(pieces["write_gate"], lead + ())),
            read_modes=read_modes,
        )


__all__ = ["Interface", "InterfaceSpec"]
