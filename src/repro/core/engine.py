"""Functional tiled execution engine with traffic accounting.

:class:`TiledEngine` executes one DNC timestep *the way HiMA does*: every
kernel operates on per-tile shards (row-wise external/state memories,
submatrix-wise linkage), inter-tile data movement is performed explicitly
and logged to a :class:`TrafficLog`, and the numerical result is — by
construction and by test — identical to the monolithic reference DNC
(:class:`repro.dnc.numpy_ref.NumpyDNC`).

In distributed (DNC-D) mode every tile runs the complete soft write/read
on its local shard only; the engine verifies the *no inter-PT traffic*
property that gives DNC-D its near-ideal scaling (paper Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import HiMAConfig
from repro.core.mapping import MemoryMap
from repro.dnc import numpy_ref as K  # the shared numpy kernels
from repro.dnc.approx import SoftmaxApproximator, skimmed_sort_order
from repro.dnc.numpy_ref import NumpyDNC, NumpyDNCConfig, NumpyDNCState
from repro.errors import SimulationError
from repro.hw.sorters import TwoStageSorter
from repro.noc.packet import Message
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class TrafficEvent:
    """One logged inter-tile transfer (words of 32-bit data)."""

    kernel: str
    src: int
    dst: int
    words: int


class TrafficLog:
    """Accumulates :class:`TrafficEvent` records for one or more steps."""

    def __init__(self, ct_node: int):
        self.ct_node = ct_node
        self.events: List[TrafficEvent] = []

    def add(self, kernel: str, src: int, dst: int, words: int) -> None:
        if words <= 0 or src == dst:
            return
        self.events.append(TrafficEvent(kernel, src, dst, int(words)))

    # ------------------------------------------------------------------
    def total_words(self) -> int:
        return sum(e.words for e in self.events)

    def words_by_kernel(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for e in self.events:
            totals[e.kernel] = totals.get(e.kernel, 0) + e.words
        return totals

    def inter_pt_words(self) -> int:
        """Words exchanged directly between PTs (excludes CT traffic)."""
        return sum(
            e.words
            for e in self.events
            if e.src != self.ct_node and e.dst != self.ct_node
        )

    def messages(
        self, link_words_per_cycle: int, kernel: Optional[str] = None
    ) -> List[Message]:
        """Convert events to NoC messages (flit size = link width)."""
        messages = []
        msg_id = 0
        for e in self.events:
            if kernel is not None and e.kernel != kernel:
                continue
            size = max(1, -(-e.words // link_words_per_cycle))
            messages.append(Message(msg_id, e.src, e.dst, size=size))
            msg_id += 1
        return messages

    def clear(self) -> None:
        self.events.clear()


class TiledEngine:
    """Sharded, traffic-accounted DNC execution over HiMA's tiles."""

    def __init__(self, config: HiMAConfig, rng: SeedLike = 0):
        self.config = config
        self.memory_map = MemoryMap(config)
        self.traffic = TrafficLog(ct_node=config.num_tiles)
        ref_config = NumpyDNCConfig(
            input_size=config.word_size,
            output_size=config.word_size,
            memory_size=config.memory_size,
            word_size=config.word_size,
            num_reads=config.num_reads,
            hidden_size=config.hidden_size,
            skim_fraction=config.skim_fraction,
            softmax_approx=(
                SoftmaxApproximator() if config.approx_softmax else None
            ),
        )
        #: Weight container + monolithic reference semantics.
        self.reference = NumpyDNC(ref_config, rng=rng)
        if config.two_stage_sort and not config.distributed:
            self.sorter = TwoStageSorter(config.memory_size, config.num_tiles)
        else:
            self.sorter = None

    # ------------------------------------------------------------------
    def initial_state(self) -> NumpyDNCState:
        return self.reference.initial_state()

    def step(
        self, x: np.ndarray, state: NumpyDNCState
    ) -> Tuple[np.ndarray, NumpyDNCState]:
        """One sharded timestep; logs traffic into :attr:`self.traffic`."""
        if self.config.distributed:
            return self._step_distributed(x, state)
        return self._step_dnc(x, state)

    def run(self, inputs: np.ndarray) -> np.ndarray:
        state = self.initial_state()
        outputs = np.empty((inputs.shape[0], self.reference.config.output_size))
        for t in range(inputs.shape[0]):
            outputs[t], state = self.step(inputs[t], state)
        return outputs

    # ------------------------------------------------------------------
    # DNC mode: exact sharded execution
    # ------------------------------------------------------------------
    def _step_dnc(
        self, x: np.ndarray, state: NumpyDNCState
    ) -> Tuple[np.ndarray, NumpyDNCState]:
        cfg = self.config
        mmap = self.memory_map
        ref = self.reference
        nt = cfg.num_tiles
        ct = mmap.ct_node
        n, w, r = cfg.memory_size, cfg.word_size, cfg.num_reads
        log = self.traffic

        # --- Controller at CT; interface vectors broadcast to PTs. -------
        lstm_h, lstm_c, interface = self._controller(x, state)
        for t in range(nt):
            log.add("interface_broadcast", ct, t, ref.config.interface_size)

        shards = [mmap.external_rows(t) for t in range(nt)]

        # --- Content-based write weighting (normalize + similarity). -----
        # Row-wise shards: normalization fully local; scores need one
        # global softmax -> tiles exchange (max, sum) psums with the CT.
        scores = np.empty(n)
        key_unit = K.l2_normalize(interface.write_key)
        for t, rows in enumerate(shards):
            scores[rows] = K.l2_normalize(state.memory[rows]) @ key_unit
            log.add("similarity", t, ct, 2)  # local max + local exp-sum
        content_w = self._softmax(interface.write_strength * scores)
        for t in range(nt):
            log.add("similarity", ct, t, 2)  # global max + normalizer back

        # --- History-based write weighting. -------------------------------
        psi = np.empty(n)
        usage = np.empty(n)
        for t, rows in enumerate(shards):
            psi[rows] = K.retention(interface.free_gates, state.read_w[:, rows])
            usage[rows] = K.usage_update(
                state.usage[rows], state.write_w[rows], psi[rows]
            )

        order = self._usage_sort(usage, log)
        alloc = K.allocation_from_order(usage, order)
        # Running product hand-off between tiles in sorted order.
        for hop in range(nt - 1):
            log.add("allocation", hop, hop + 1, 1)

        write_w = np.empty(n)
        memory = np.empty_like(state.memory)
        for t, rows in enumerate(shards):
            write_w[rows] = K.write_weight_merge(
                content_w[rows], alloc[rows],
                interface.write_gate, interface.allocation_gate,
            )
            memory[rows] = K.erase_write(
                state.memory[rows], write_w[rows],
                interface.erase, interface.write_vector,
            )

        # --- Linkage + precedence (submatrix-wise blocks). ----------------
        linkage = self._linkage_update(state, write_w, log)
        # Global sum of w_w: psum ring ending at the CT.
        for hop in range(nt - 1):
            log.add("precedence", hop, hop + 1, 1)
        log.add("precedence", nt - 1, ct, 1)
        precedence = np.empty(n)
        total_w = write_w.sum()
        for t, rows in enumerate(shards):
            precedence[rows] = (1.0 - total_w) * state.precedence[rows] + write_w[rows]

        # --- Content-based read weighting on the updated memory. ----------
        rkey_unit = K.l2_normalize(interface.read_keys)
        rscores = np.empty((r, n))
        for t, rows in enumerate(shards):
            rscores[:, rows] = rkey_unit @ K.l2_normalize(memory[rows]).T
            log.add("similarity", t, ct, 2 * r)
        content_r = self._softmax(
            interface.read_strengths[:, None] * rscores, axis=-1
        )
        for t in range(nt):
            log.add("similarity", ct, t, 2 * r)

        # --- Forward-backward over the linkage blocks. ---------------------
        fwd, bwd = self._forward_backward(linkage, state.read_w, log)

        read_w = np.empty((r, n))
        for t, rows in enumerate(shards):
            read_w[:, rows] = K.read_weight_merge(
                content_r[:, rows], fwd[:, rows], bwd[:, rows],
                interface.read_modes,
            )

        # --- Memory read: local partials + psum reduction at the CT. ------
        read_vecs = np.zeros((r, w))
        for t, rows in enumerate(shards):
            read_vecs += read_w[:, rows] @ memory[rows]
            log.add("memory_read", t, ct, r * w)

        y = self._output(lstm_h, read_vecs)
        new_state = NumpyDNCState(
            memory=memory, usage=usage, precedence=precedence, linkage=linkage,
            write_w=write_w, read_w=read_w, read_vecs=read_vecs,
            lstm_h=lstm_h, lstm_c=lstm_c,
        )
        return y, new_state

    # ------------------------------------------------------------------
    def _linkage_update(
        self, state: NumpyDNCState, write_w: np.ndarray, log: TrafficLog
    ) -> np.ndarray:
        """Blockwise linkage update with segment-distribution traffic."""
        cfg = self.config
        mmap = self.memory_map
        n = cfg.memory_size
        linkage = np.empty_like(state.linkage)
        for t in range(cfg.num_tiles):
            rows, cols = mmap.linkage_block(t)
            # Fetch w_w row segment and (w_w, p) column segments from the
            # row-wise owners of those index ranges.
            for owner in mmap.row_segment_owners(rows):
                log.add("linkage", owner, t, mmap.rows_per_tile)
            for owner in mmap.row_segment_owners(cols):
                log.add("linkage", owner, t, 2 * mmap.rows_per_tile)
            w_rows = write_w[rows][:, None]
            w_cols = write_w[cols][None, :]
            p_cols = state.precedence[cols][None, :]
            block = (1.0 - w_rows - w_cols) * state.linkage[rows, cols] + (
                w_rows * p_cols
            )
            linkage[rows, cols] = block
        linkage[np.arange(n), np.arange(n)] = 0.0
        return linkage

    def _forward_backward(
        self, linkage: np.ndarray, prev_read_w: np.ndarray, log: TrafficLog
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Blockwise ``f = L w_r`` / ``b = L^T w_r`` with psum traffic."""
        cfg = self.config
        mmap = self.memory_map
        r, n = prev_read_w.shape
        fwd = np.zeros((r, n))
        bwd = np.zeros((r, n))
        nt_h, nt_w = mmap.nt_h, mmap.nt_w
        for t in range(cfg.num_tiles):
            rows, cols = mmap.linkage_block(t)
            block = linkage[rows, cols]
            # Operand segments arrive from their row-wise owners.
            for owner in mmap.row_segment_owners(cols):
                log.add("forward_backward", owner, t, r * mmap.rows_per_tile)
            for owner in mmap.row_segment_owners(rows):
                log.add("forward_backward", owner, t, r * mmap.rows_per_tile)
            fwd[:, rows.start : rows.stop] += prev_read_w[:, cols] @ block.T
            bwd[:, cols.start : cols.stop] += prev_read_w[:, rows] @ block
            # Partial results reduce across the block row/column; the last
            # tile in each chain forwards to the segment owner.
            bi, bj = mmap.linkage_grid_index(t)
            if bj + 1 < nt_w:
                log.add("forward_backward", t, t + 1, r * mmap.block_rows)
            if bi + 1 < nt_h:
                log.add("forward_backward", t, t + nt_w, r * mmap.block_cols)
        return fwd, bwd

    def _usage_sort(self, usage: np.ndarray, log: TrafficLog) -> np.ndarray:
        """Sorted order via the configured sorter, with traffic."""
        cfg = self.config
        ct = self.memory_map.ct_node
        n_local = cfg.local_rows
        if cfg.skim_fraction > 0.0:
            order = skimmed_sort_order(usage, cfg.skim_fraction)
            effective = cfg.effective_sort_length
            per_tile = max(1, effective // cfg.num_tiles)
        elif self.sorter is not None:
            _, order = self.sorter.sort(usage)
            per_tile = n_local
        else:
            order = np.argsort(usage, kind="stable")
            per_tile = n_local
        for t in range(cfg.num_tiles):
            log.add("usage_sort", t, ct, per_tile)  # (sorted) shard to CT
            log.add("usage_sort", ct, t, per_tile)  # merged order back
        return order

    # ------------------------------------------------------------------
    # DNC-D mode: purely local tiles
    # ------------------------------------------------------------------
    def _step_distributed(
        self, x: np.ndarray, state: NumpyDNCState
    ) -> Tuple[np.ndarray, NumpyDNCState]:
        """DNC-D: every tile updates only its shard; reads merge at the CT.

        The global linkage matrix keeps only the block-diagonal (each
        tile's local ``n x n`` linkage); read vectors merge with uniform
        weights (the trainable ``alpha`` lives in the learned model,
        :class:`repro.dnc.distributed.DNCD`).
        """
        cfg = self.config
        mmap = self.memory_map
        ref = self.reference
        ct = mmap.ct_node
        nt = cfg.num_tiles
        n, w, r = cfg.memory_size, cfg.word_size, cfg.num_reads
        log = self.traffic

        lstm_h, lstm_c, interface = self._controller(x, state)
        for t in range(nt):
            log.add("interface_broadcast", ct, t, ref.config.interface_size)

        memory = np.empty_like(state.memory)
        usage = np.empty(n)
        precedence = np.empty(n)
        linkage = np.zeros_like(state.linkage)
        write_w = np.empty(n)
        read_w = np.empty((r, n))
        read_vecs = np.zeros((r, w))
        key_unit = K.l2_normalize(interface.write_key)
        rkey_unit = K.l2_normalize(interface.read_keys)

        for t in range(nt):
            rows = mmap.external_rows(t)
            local_mem = state.memory[rows]
            scores = K.l2_normalize(local_mem) @ key_unit
            content_w = self._softmax(interface.write_strength * scores)

            psi = K.retention(interface.free_gates, state.read_w[:, rows])
            local_usage = K.usage_update(
                state.usage[rows], state.write_w[rows], psi
            )
            if cfg.skim_fraction > 0.0:
                order = skimmed_sort_order(local_usage, cfg.skim_fraction)
            else:
                order = np.argsort(local_usage, kind="stable")
            alloc = K.allocation_from_order(local_usage, order)
            local_write_w = K.write_weight_merge(
                content_w, alloc, interface.write_gate, interface.allocation_gate
            )
            local_new_mem = K.erase_write(
                local_mem, local_write_w, interface.erase, interface.write_vector
            )
            local_link = K.linkage_update(
                state.linkage[rows, rows], local_write_w, state.precedence[rows]
            )
            local_prec = K.precedence_update(state.precedence[rows], local_write_w)

            local_rscores = rkey_unit @ K.l2_normalize(local_new_mem).T
            local_content_r = self._softmax(
                interface.read_strengths[:, None] * local_rscores, axis=-1
            )
            local_fwd, local_bwd = K.forward_backward(
                local_link, state.read_w[:, rows]
            )
            local_read_w = K.read_weight_merge(
                local_content_r, local_fwd, local_bwd, interface.read_modes
            )
            local_reads = K.read_vectors(local_new_mem, local_read_w)

            memory[rows] = local_new_mem
            usage[rows] = local_usage
            precedence[rows] = local_prec
            linkage[rows, rows] = local_link
            write_w[rows] = local_write_w
            read_w[:, rows] = local_read_w
            # Eq. (4) with uniform alpha: the engine models dataflow, the
            # trained alpha lives in repro.dnc.distributed.DNCD.
            read_vecs += local_reads / nt
            log.add("read_vector_collect", t, ct, r * w)

        y = self._output(lstm_h, read_vecs)
        new_state = NumpyDNCState(
            memory=memory, usage=usage, precedence=precedence, linkage=linkage,
            write_w=write_w, read_w=read_w, read_vecs=read_vecs,
            lstm_h=lstm_h, lstm_c=lstm_c,
        )
        return y, new_state

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _controller(self, x: np.ndarray, state: NumpyDNCState):
        ref = self.reference
        h = ref.config.hidden_size
        controller_in = np.concatenate([x, state.read_vecs.reshape(-1)])
        gates = controller_in @ ref.w_x + state.lstm_h @ ref.w_h + ref.b
        i_g = K._sigmoid(gates[0 * h : 1 * h])
        f_g = K._sigmoid(gates[1 * h : 2 * h])
        g_g = np.tanh(gates[2 * h : 3 * h])
        o_g = K._sigmoid(gates[3 * h : 4 * h])
        lstm_c = f_g * state.lstm_c + i_g * g_g
        lstm_h = o_g * np.tanh(lstm_c)
        flat = lstm_h @ ref.w_if + ref.b_if
        interface = K.parse_interface(
            flat, ref.config.word_size, ref.config.num_reads
        )
        return lstm_h, lstm_c, interface

    def _output(self, lstm_h: np.ndarray, read_vecs: np.ndarray) -> np.ndarray:
        ref = self.reference
        output_in = np.concatenate([lstm_h, read_vecs.reshape(-1)])
        return output_in @ ref.w_y + ref.b_y

    def _softmax(self, scores: np.ndarray, axis: int = -1) -> np.ndarray:
        approx = self.reference.config.softmax_approx
        if approx is not None:
            return approx.softmax(scores, axis=axis)
        return K.exact_softmax(scores, axis=axis)

    def verify_against_reference(self, steps: int = 3, rng: SeedLike = 7) -> float:
        """Run both paths on random input; return max abs output error.

        Raises :class:`~repro.errors.SimulationError` in DNC mode if the
        sharded execution diverges from the monolithic reference.
        """
        from repro.utils.rng import new_rng

        gen = new_rng(rng)
        inputs = gen.standard_normal((steps, self.reference.config.input_size))
        ours = self.run(inputs)
        reference_out = self.reference.run(inputs)
        error = float(np.max(np.abs(ours - reference_out)))
        if not self.config.distributed and error > 1e-9:
            raise SimulationError(
                f"tiled execution diverged from reference (max err {error:.3e})"
            )
        return error


__all__ = ["TiledEngine", "TrafficLog", "TrafficEvent"]
