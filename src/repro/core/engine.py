"""Functional tiled execution engine with traffic accounting.

:class:`TiledEngine` executes one DNC timestep *the way HiMA does*: every
kernel operates on per-tile shards (row-wise external/state memories,
submatrix-wise linkage), inter-tile data movement is performed explicitly
and logged to a :class:`TrafficLog`, and the numerical result is — by
construction and by test — identical to the monolithic reference DNC
(:class:`repro.dnc.numpy_ref.NumpyDNC`).

In distributed (DNC-D) mode every tile runs the complete soft write/read
on its local shard only; the engine verifies the *no inter-PT traffic*
property that gives DNC-D its near-ideal scaling (paper Section 5.1).
The DNC-D hot path is fully vectorized: the tile loop is folded into a
leading axis and executed as stacked einsum/matmul kernels
(:mod:`repro.core.kernels`).

Batching: every step path accepts a leading batch dimension.
:meth:`TiledEngine.run_batch` advances ``B`` sequences in lock-step
through the same sharded kernels, which is the engine's throughput path —
one stacked matmul per kernel instead of ``B`` small ones.  Traffic
accounting stays structurally identical under batching: the *message*
pattern (event count, endpoints) does not change, while each event's word
count scales by ``B``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels as SK  # stacked shard kernels
from repro.core.access import make_access_policy
from repro.core.backend import make_backend
from repro.core.config import HiMAConfig
from repro.core.mapping import MemoryMap
from repro.dnc import numpy_ref as K  # the shared numpy kernels
from repro.dnc.approx import SoftmaxApproximator, skimmed_sort_order
from repro.dnc.numpy_ref import NumpyDNC, NumpyDNCConfig, NumpyDNCState
from repro.errors import ConfigError, SimulationError
from repro.hw.sorters import TwoStageSorter
from repro.noc.packet import Message
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class TrafficEvent:
    """One logged inter-tile transfer (words of 32-bit data)."""

    kernel: str
    src: int
    dst: int
    words: int


class TrafficLog:
    """Accumulates :class:`TrafficEvent` records for one or more steps.

    The log is cumulative by design: every :meth:`TiledEngine.step`,
    :meth:`TiledEngine.run`, and :meth:`TiledEngine.run_batch` call
    appends its events and nothing ever clears them implicitly.  Callers
    that want per-run or per-phase traffic (benchmark harnesses, the perf
    model) must call :meth:`clear` at their phase boundaries, otherwise
    warm-up and repeat traffic piles into one ever-growing list.

    **Ring-buffer compaction** (``max_events``): long-running services
    that never hit a phase boundary (the :mod:`repro.serve` session
    server) can bound the log's memory.  With ``max_events=M`` the log
    retains at most ``M`` recent events; when a new event would exceed
    that, the oldest half folds into running aggregates in one pass, so
    appends stay amortized O(1) and memory stays O(M).  The contract:

    * :meth:`total_words`, :meth:`words_by_kernel`, and
      :meth:`inter_pt_words` remain **exact** over everything ever
      logged — compaction moves words into aggregates, never drops them.
    * :attr:`events` and :meth:`messages` cover only the retained window
      (at least the most recent ``M // 2`` events).  Message ids stay
      globally stable across compactions: an event keeps the id it was
      assigned at append time (``dropped_events`` + window position).
    * :meth:`clear` resets the retained window *and* the aggregates.
    """

    def __init__(self, ct_node: int, max_events: Optional[int] = None):
        if max_events is not None and max_events < 2:
            raise ConfigError(
                f"max_events must be >= 2 (or None for unbounded), got {max_events}"
            )
        self.ct_node = ct_node
        self.max_events = max_events
        self.events: List[TrafficEvent] = []
        #: Events folded into aggregates and no longer retained.
        self.dropped_events = 0
        self._compacted_words = 0
        self._compacted_by_kernel: Dict[str, int] = {}
        self._compacted_inter_pt = 0

    def add(self, kernel: str, src: int, dst: int, words: int) -> None:
        if words <= 0 or src == dst:
            return
        self.events.append(TrafficEvent(kernel, src, dst, int(words)))
        if self.max_events is not None and len(self.events) > self.max_events:
            self._compact(len(self.events) - self.max_events // 2)

    def _compact(self, count: int) -> None:
        """Fold the oldest ``count`` events into the exact aggregates."""
        for e in self.events[:count]:
            self._compacted_words += e.words
            self._compacted_by_kernel[e.kernel] = (
                self._compacted_by_kernel.get(e.kernel, 0) + e.words
            )
            if e.src != self.ct_node and e.dst != self.ct_node:
                self._compacted_inter_pt += e.words
        del self.events[:count]
        self.dropped_events += count

    # ------------------------------------------------------------------
    def total_words(self) -> int:
        return self._compacted_words + sum(e.words for e in self.events)

    def words_by_kernel(self) -> Dict[str, int]:
        totals = dict(self._compacted_by_kernel)
        for e in self.events:
            totals[e.kernel] = totals.get(e.kernel, 0) + e.words
        return totals

    def inter_pt_words(self) -> int:
        """Words exchanged directly between PTs (excludes CT traffic)."""
        return self._compacted_inter_pt + sum(
            e.words
            for e in self.events
            if e.src != self.ct_node and e.dst != self.ct_node
        )

    def messages(
        self, link_words_per_cycle: int, kernel: Optional[str] = None
    ) -> List[Message]:
        """Convert retained events to NoC messages (flit size = link width).

        Message ids are the event's append-time index (compacted events
        never reappear, so ids stay globally stable), and an event keeps
        the same id whether or not a ``kernel`` filter is applied —
        per-kernel message sets from one log never alias ids.
        """
        messages = []
        for event_idx, e in enumerate(self.events):
            if kernel is not None and e.kernel != kernel:
                continue
            size = max(1, -(-e.words // link_words_per_cycle))
            messages.append(
                Message(self.dropped_events + event_idx, e.src, e.dst, size=size)
            )
        return messages

    def clear(self) -> None:
        """Drop all events and aggregates (callers own phase boundaries)."""
        self.events.clear()
        self.dropped_events = 0
        self._compacted_words = 0
        self._compacted_by_kernel = {}
        self._compacted_inter_pt = 0


def _lead_batch(lead: Tuple[int, ...]) -> int:
    """Word-count multiplier for a leading batch shape (1 if unbatched)."""
    return int(lead[0]) if lead else 1


def gather_states(states: Sequence[NumpyDNCState]) -> NumpyDNCState:
    """Pack ``K`` independent unbatched session states into one batched state.

    The serving layer's hot-path primitive: heterogeneous sessions (each
    mid-way through its own sequence) stack along a leading batch axis so
    one :meth:`TiledEngine.step` advances all of them.  Element ``i`` of
    the result is bitwise ``states[i]``; :func:`scatter_states` is the
    exact inverse.  Raises :class:`~repro.errors.ConfigError` on an empty
    sequence, already-batched inputs, or mismatched shapes/dtypes
    (sessions from engines with different configs cannot share a batch).
    """
    return NumpyDNCState.stack(states)


def scatter_states(batched: NumpyDNCState) -> List[NumpyDNCState]:
    """Split a batched state back into independent unbatched states.

    The exact inverse of :func:`gather_states`:
    ``scatter_states(gather_states(states))`` reproduces ``states``
    bitwise, for any dtype.  Each returned state owns contiguous copies
    of its rows, so per-session states can outlive the batched buffers.
    """
    return batched.unstack()


class TiledEngine:
    """Sharded, traffic-accounted DNC execution over HiMA's tiles."""

    def __init__(
        self,
        config: HiMAConfig,
        rng: SeedLike = 0,
        traffic_max_events: Optional[int] = None,
    ):
        self.config = config
        self.memory_map = MemoryMap(config)
        # ``traffic_max_events`` bounds the log for long-running services
        # (see TrafficLog's compaction contract); None keeps the full
        # event list, which every per-run analysis relies on.
        self.traffic = TrafficLog(
            ct_node=config.num_tiles, max_events=traffic_max_events
        )
        ref_config = NumpyDNCConfig(
            input_size=config.word_size,
            output_size=config.word_size,
            memory_size=config.memory_size,
            word_size=config.word_size,
            num_reads=config.num_reads,
            hidden_size=config.hidden_size,
            skim_fraction=config.skim_fraction,
            softmax_approx=(
                SoftmaxApproximator() if config.approx_softmax else None
            ),
            dtype=config.dtype,
        )
        #: Weight container + monolithic reference semantics.
        self.reference = NumpyDNC(ref_config, rng=rng)
        if config.two_stage_sort and not config.distributed:
            self.sorter = TwoStageSorter(config.memory_size, config.num_tiles)
        else:
            self.sorter = None
        #: The memory-access policy owning the five N-scaling phases of
        #: the step (see :mod:`repro.core.access`): dense is the paper's
        #: verbatim path, sparse is top-K addressing at O(K·N)/step.
        self.access = make_access_policy(config)
        #: The kernel backend owning the hot path (fused write phase,
        #: content scores, batched argsort); per-engine instance — tuned
        #: backends hold scratch that must not be shared across the
        #: sharded serving stack's threads (see :mod:`repro.core.backend`).
        self.backend = make_backend(config)
        # Resident buffers for the fused write kernel, used only inside
        # masked steps where this engine controls the output arrays'
        # lifecycle (see _step_masked); plain steps return caller-owned
        # fresh arrays and must never write into shared buffers.
        self._fused_workspace = SK.FusedWriteWorkspace()
        self._active_workspace: Optional[SK.FusedWriteWorkspace] = None
        # Partial-occupancy dense masked step plumbing: when set, the
        # fused write phase skips inactive slots in place
        # (kernels.fused_erase_write_linkage_inplace with the reused
        # scratch dict) and traffic words scale by the active count
        # instead of the resident batch size.
        self._fused_active: Optional[np.ndarray] = None
        self._masked_scratch: Dict = {}
        self._traffic_words_scale: Optional[int] = None
        # DNC-D de-aliasing buffers for workspace-backed masked steps:
        # staging copies of the view-sharded inputs plus the resident
        # scatter target for the full linkage (see _step_distributed).
        self._dncd_scratch: Dict = {}

    # ------------------------------------------------------------------
    def initial_state(self, batch_size: Optional[int] = None) -> NumpyDNCState:
        return self.reference.initial_state(batch_size=batch_size)

    #: Bytes of state gathered + scattered by the most recent masked
    #: :meth:`step` call (0 on the dense all-slots fast path and for
    #: unmasked steps); the serving layer's copy-traffic metrics read it.
    last_state_bytes_copied: int = 0

    #: Optional :class:`repro.obs.profiler.PhaseTimer` (duck-typed — the
    #: core never imports ``repro.obs``).  ``None`` by default: the step
    #: loop's hooks then cost one attribute load and ``None`` check per
    #: phase.  Servers enabling per-phase profiling attach a timer here;
    #: each tick is attributed to named phases (content addressing,
    #: sort/allocation, erase+write+linkage, read, gather/scatter, ...)
    #: with counts, cumulative seconds, and estimated bytes touched
    #: (:meth:`repro.core.access.AccessPolicy.bytes_touched`).
    profiler = None

    def step(
        self,
        x: np.ndarray,
        state: NumpyDNCState,
        active: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, NumpyDNCState]:
        """One sharded timestep; logs traffic into :attr:`self.traffic`.

        ``x`` is ``(input_size,)`` or batched ``(B, input_size)`` with a
        matching batched ``state``.  Inputs are cast to the configured
        dtype policy.  Events append to :attr:`traffic` cumulatively —
        see :class:`TrafficLog` for the clearing contract.

        **Masked in-place form** (``active`` given): ``state`` must be
        batched, and ``active`` selects which batch slots advance — an
        integer index array (order-preserving: compact row ``k`` is slot
        ``active[k]``) or a boolean mask of length ``B``.  The state is
        updated *in place*: active slots advance one step, inactive
        slots are bitwise untouched, and the returned state is the same
        object.  The returned ``y`` is ``(B, output_size)`` with
        inactive rows zero.  When ``active`` covers every slot (any
        order — it is then a permutation, and the per-row kernels make
        batch order irrelevant) the step runs directly on the resident
        arrays with **zero** gather/scatter copies.  Partial occupancy
        at or above ``config.masked_dense_min_occupancy`` (non-DNC-D)
        takes the dense-capacity path: every cheap kernel runs over the
        full resident batch while the O(N^2) write phase skips inactive
        slots in place, so only the small per-row fields are scattered
        back.  Below the threshold (and always for DNC-D) the active
        rows are gathered/scattered with one vectorized fancy index per
        field (:attr:`last_state_bytes_copied` records the cost either
        way).  Traffic words scale by the number of *active* slots.
        """
        x = np.asarray(x, dtype=self.config.np_dtype)
        self.last_state_bytes_copied = 0
        if active is not None:
            return self._step_masked(x, state, active)
        if self.config.distributed:
            return self._step_distributed(x, state)
        return self._step_dnc(x, state)

    def _step_masked(
        self, x: np.ndarray, state: NumpyDNCState, active: np.ndarray
    ) -> Tuple[np.ndarray, NumpyDNCState]:
        b = state.batch_size
        if b is None:
            raise ConfigError("step(active=...) requires a batched state")
        if x.ndim != 2 or x.shape[0] != b:
            raise ConfigError(
                f"masked step expects x of shape ({b}, input_size), "
                f"got {x.shape}"
            )
        idx = np.asarray(active)
        if idx.dtype == np.bool_:
            if idx.shape != (b,):
                raise ConfigError(
                    f"boolean active mask must have shape ({b},), "
                    f"got {idx.shape}"
                )
            idx = np.flatnonzero(idx)
        else:
            idx = idx.astype(np.intp, copy=False).reshape(-1)
            if idx.size and (idx.min() < 0 or idx.max() >= b):
                raise ConfigError(
                    f"active slot indices must lie in [0, {b}), got {idx}"
                )
            if np.unique(idx).size != idx.size:
                raise ConfigError(
                    f"active slot indices must be unique, got {idx}"
                )
        out_size = self.reference.config.output_size
        if idx.size == 0:
            return np.zeros((b, out_size), dtype=self.config.np_dtype), state
        if self.access.is_sparse:
            # Sparse access always takes the dense-capacity path, at any
            # occupancy: its cheap kernels are O(K)/O(N) per slot (so
            # compact-path gathers of the N^2 fields would dominate the
            # step), and the K-row sparse write kernel already skips
            # inactive slots in place.  Sparse + distributed is rejected
            # at config time, so no DNC-D case arises here.
            return self._step_masked_dense(x, state, idx)
        step_fn = (
            self._step_distributed if self.config.distributed else self._step_dnc
        )
        if (
            idx.size < b
            and not self.config.distributed
            and idx.size >= self.config.masked_dense_min_occupancy * b
        ):
            # Partial occupancy above the configured threshold: run the
            # step over the whole resident batch with zero gathers
            # rather than paying the compact path's per-field
            # gather/scatter.  DNC-D is excluded — its stacked kernels
            # view-shard the state arrays.
            return self._step_masked_dense(x, state, idx)
        if idx.size == b:
            # Dense fast path: every slot advances (the validated idx is
            # then a permutation of the slots, and per-row kernels make
            # dispatch order irrelevant to the computed values), so the
            # step runs on the resident arrays directly and the state
            # object swaps its field references to the outputs — no
            # copy-back pass.  The fused write kernel may target the
            # resident workspace here because this engine owns the
            # output arrays' fate: the previous arrays are donated back
            # as the next tick's output buffers (ping-pong), keeping the
            # hot path allocation-free for the N^2 state.  DNC-D uses
            # the workspace too, but *stage-and-overwrite* instead of
            # ping-pong: its stacked-shard inputs are views of the state
            # arrays, so _step_distributed first copies them into
            # engine-owned staging buffers (de-aliasing input from
            # output) and the stacked outputs live in one stable
            # workspace buffer set — nothing is recycled because the
            # donated full-shape arrays could never match the stacked
            # buffer keys.  The compact path below never uses the
            # workspace — its sub-batch shape varies with the active
            # count, which would accumulate one retained buffer set per
            # distinct occupancy.
            use_workspace = self.config.fused_write_linkage
            old = (state.memory, state.linkage, state.precedence)
            if use_workspace:
                self._active_workspace = self._fused_workspace
            try:
                y, new_state = step_fn(x, state)
            finally:
                self._active_workspace = None
            state.assign_from(new_state)
            if use_workspace and not self.config.distributed:
                self._fused_workspace.recycle(*old)
            return y, state
        prof = self.profiler
        if prof is not None:
            tg = prof.now()
        sub = state.take_rows(idx)
        if prof is not None:
            prof.lap("gather_scatter", tg, sub.nbytes)
        y_sub, new_sub = step_fn(x[idx], sub)
        if prof is not None:
            tg = prof.now()
        state.write_rows(idx, new_sub)
        if prof is not None:
            prof.lap("gather_scatter", tg, new_sub.nbytes)
        self.last_state_bytes_copied = sub.nbytes + new_sub.nbytes
        y = np.zeros((b, out_size), dtype=self.config.np_dtype)
        y[idx] = y_sub
        return y, state

    def _step_masked_dense(
        self, x: np.ndarray, state: NumpyDNCState, idx: np.ndarray
    ) -> Tuple[np.ndarray, NumpyDNCState]:
        """Partial-occupancy masked step over the full resident batch.

        Above ``masked_dense_min_occupancy`` the compact path's
        per-field gather/scatter of the active rows costs more than
        simply computing the cheap per-row kernels for every resident
        slot, so this path steps the whole capacity-``B`` batch with
        zero gathers: the O(N^2) write phase skips inactive slots *in
        place* (:func:`repro.core.kernels.fused_erase_write_linkage_inplace`),
        and only the small per-row state fields are scattered back.
        Inactive slots stay bitwise untouched, inactive ``y`` rows are
        zero, and traffic words scale by the active count — the same
        masked-step contract as the compact path, at
        :attr:`last_state_bytes_copied` cost of one write per active
        row of the non-resident fields (the N^2 fields never move).

        With ``fused_write_linkage=False`` the three-pass write phase
        has no masked form, so it computes all ``B`` rows and the three
        big fields join the scatter — the escape hatch stays available
        at the cost of the extra write-phase compute.

        Sparse access (``access_policy="sparse"``) routes *every* masked
        step here, including full occupancy: its write phase
        (:func:`repro.core.kernels.sparse_erase_write_linkage_inplace`)
        is masked-in-place by construction, so ``_fused_active`` is set
        regardless of the ``fused_write_linkage`` flag.
        """
        b = state.batch_size
        self._traffic_words_scale = int(idx.size)
        self._fused_active = (
            idx
            if (self.config.fused_write_linkage or self.access.is_sparse)
            else None
        )
        try:
            y, new_state = self._step_dnc(x, state)
        finally:
            self._fused_active = None
            self._traffic_words_scale = None
        prof = self.profiler
        if prof is not None:
            tg = prof.now()
        copied = 0
        for name in NumpyDNCState.FIELDS:
            new = getattr(new_state, name)
            cur = getattr(state, name)
            if new is cur:
                continue  # the masked fused write phase updated it in place
            cur[idx] = new[idx]
            copied += idx.size * cur[0].nbytes
        self.last_state_bytes_copied = copied
        if prof is not None:
            prof.lap("gather_scatter", tg, copied)
        mask = np.zeros(b, dtype=bool)
        mask[idx] = True
        y[~mask] = 0.0
        return y, state

    def _traffic_words(self, lead_batch: int) -> int:
        """Traffic word multiplier: the active count under the
        partial-occupancy dense masked step, else the lead batch."""
        scale = self._traffic_words_scale
        return lead_batch if scale is None else scale

    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Run a ``(T, input_size)`` sequence; returns ``(T, output_size)``.

        Traffic events for all ``T`` steps accumulate into
        :attr:`traffic`; the log is never cleared implicitly, so callers
        comparing runs must ``engine.traffic.clear()`` between them.
        """
        state = self.initial_state()
        outputs = np.empty(
            (inputs.shape[0], self.reference.config.output_size),
            dtype=self.config.np_dtype,
        )
        for t in range(inputs.shape[0]):
            outputs[t], state = self.step(inputs[t], state)
        return outputs

    def run_batch(self, inputs: np.ndarray) -> np.ndarray:
        """Run ``(T, B, input_size)`` sequences; returns ``(T, B, output_size)``.

        All ``B`` sequences advance in lock-step through the sharded
        kernels.  Per-event traffic words scale by ``B`` while the message
        pattern stays that of a single step; like :meth:`run`, events
        accumulate into :attr:`traffic` until the caller clears them.
        """
        if inputs.ndim != 3 or inputs.shape[1] < 1:
            raise ConfigError(
                f"run_batch expects (T, B>=1, input_size) inputs, got {inputs.shape}"
            )
        steps, batch = inputs.shape[0], inputs.shape[1]
        state = self.initial_state(batch_size=batch)
        outputs = np.empty(
            (steps, batch, self.reference.config.output_size),
            dtype=self.config.np_dtype,
        )
        # Intermediate states are engine-private here (the loop drops
        # each one), so the fused write may ping-pong the resident
        # workspace instead of allocating fresh O(N^2) outputs every
        # step.  Values are bitwise-unchanged — only the destination
        # buffers differ.  Public step() callers keep fresh outputs:
        # they may retain states arbitrarily (checkpoints, arenas).
        use_workspace = (
            self.config.fused_write_linkage
            and not self.config.distributed
            and self.config.access_policy == "dense"
        )
        try:
            for t in range(steps):
                if use_workspace:
                    self._active_workspace = self._fused_workspace
                old = state
                outputs[t], state = self.step(inputs[t], state)
                if use_workspace:
                    self._active_workspace = None
                    self._fused_workspace.recycle(
                        old.memory, old.linkage, old.precedence
                    )
        finally:
            self._active_workspace = None
        return outputs

    # ------------------------------------------------------------------
    # DNC mode: exact sharded execution
    # ------------------------------------------------------------------
    def _step_dnc(
        self, x: np.ndarray, state: NumpyDNCState
    ) -> Tuple[np.ndarray, NumpyDNCState]:
        ref = self.reference
        nt = self.config.num_tiles
        ct = self.memory_map.ct_node
        log = self.traffic
        lead = x.shape[:-1]
        b = self._traffic_words(_lead_batch(lead))
        access = self.access
        # Per-phase profiling seam: off (None) by default, near-zero when
        # on — each enabled phase costs one perf_counter call and a dict
        # update, attributed via the access policy's bytes model.
        prof = self.profiler
        if prof is not None:
            tp = prof.now()

        # --- Controller at CT; interface vectors broadcast to PTs. -------
        lstm_h, lstm_c, interface = self._controller(x, state)
        for t in range(nt):
            log.add("interface_broadcast", ct, t, b * ref.config.interface_size)
        if prof is not None:
            tp = prof.lap("controller", tp, access.bytes_touched("controller", self, b))

        # The row-wise partition makes every per-slot kernel's shard
        # computation bit-equal to the whole-array form (normalization,
        # retention, usage, erase/write are all row-local), so the hot
        # path runs each kernel once over all rows — batched, that is one
        # stacked matmul instead of Nt small ones — while the traffic
        # loops inside the access policy record the per-tile dataflow
        # exactly as before.  Every phase whose cost scales with N is
        # delegated to the configured access policy (dense = the paper's
        # verbatim path; sparse = top-K addressing); the exact O(N)
        # elementwise pieces — retention, usage, weight merges — stay
        # here, shared by both.

        # --- Content-based write weighting (normalize + similarity). -----
        content_w = access.write_content(self, state, interface, log, b)
        if prof is not None:
            tp = prof.lap(
                "content_addressing", tp,
                access.bytes_touched("content_addressing", self, b),
            )

        # --- History-based write weighting (fully row-local). -------------
        psi = K.retention(interface.free_gates, state.read_w)
        usage = K.usage_update(state.usage, state.write_w, psi)

        alloc = access.allocation(self, usage, log, b)

        write_w = K.write_weight_merge(
            content_w, alloc, interface.write_gate, interface.allocation_gate
        )
        if prof is not None:
            tp = prof.lap(
                "sort_allocation", tp,
                access.bytes_touched("sort_allocation", self, b),
            )

        # --- Write phase: erase+write, linkage, precedence. ---------------
        memory, linkage, precedence = access.write_phase(
            self, state, write_w, interface, log, b
        )
        if prof is not None:
            tp = prof.lap(
                "erase_write_linkage", tp,
                access.bytes_touched("erase_write_linkage", self, b),
            )

        # --- Content-based read weighting on the updated memory. ----------
        content_r = access.read_content(self, memory, interface, log, b)
        if prof is not None:
            tp = prof.lap(
                "content_addressing", tp,
                access.bytes_touched("content_addressing", self, b),
            )

        # --- Forward-backward over the linkage blocks. ---------------------
        fwd, bwd = access.forward_backward(self, linkage, state.read_w, log)

        read_w = access.read_weights(
            self, content_r, fwd, bwd, interface.read_modes
        )

        # --- Memory read: local partials + psum reduction at the CT. ------
        read_vecs = access.read_vectors(self, memory, read_w, log, b)
        if prof is not None:
            # Fused-read backends report under "read_phase" so profiles
            # distinguish the single-pass sweep from the classic path.
            tp = prof.lap(
                self.backend.read_phase_label, tp,
                access.bytes_touched("read", self, b),
            )

        y = self._output(lstm_h, read_vecs)
        new_state = NumpyDNCState(
            memory=memory, usage=usage, precedence=precedence, linkage=linkage,
            write_w=write_w, read_w=read_w, read_vecs=read_vecs,
            lstm_h=lstm_h, lstm_c=lstm_c,
        )
        if prof is not None:
            prof.lap("output", tp, access.bytes_touched("output", self, b))
        return y, new_state

    # ------------------------------------------------------------------
    def _log_linkage_traffic(self, b: int) -> None:
        """Blockwise segment-distribution traffic for the linkage update.

        Traffic follows the submatrix grid exactly whichever arithmetic
        path (fused or three-pass) computes the update — the dataflow is
        a property of the partition, not of the kernel fusion.
        """
        cfg = self.config
        mmap = self.memory_map
        log = self.traffic
        for t in range(cfg.num_tiles):
            rows, cols = mmap.linkage_block(t)
            # Fetch w_w row segment and (w_w, p) column segments from the
            # row-wise owners of those index ranges.
            for owner in mmap.row_segment_owners(rows):
                log.add("linkage", owner, t, b * mmap.rows_per_tile)
            for owner in mmap.row_segment_owners(cols):
                log.add("linkage", owner, t, 2 * b * mmap.rows_per_tile)

    def _linkage_update(
        self, state: NumpyDNCState, write_w: np.ndarray
    ) -> np.ndarray:
        """Three-pass linkage arithmetic (``fused_write_linkage=False``).

        The arithmetic — which is cellwise and therefore identical
        however the matrix is cut — runs as one contiguous in-place pass
        (under batching the blockwise form costs Nt strided
        ``(B, nr, nc)`` updates and dominates the step).
        """
        n = self.config.memory_size
        w_rows = write_w[..., :, None]
        # Same association as the reference kernel ((1 - w_i) - w_j) so the
        # decay stays bitwise identical; one full-size allocation total.
        linkage = np.subtract(1.0 - w_rows, write_w[..., None, :])
        linkage *= state.linkage
        linkage += w_rows * state.precedence[..., None, :]
        linkage[..., np.arange(n), np.arange(n)] = 0.0
        return linkage

    def _forward_backward(
        self, linkage: np.ndarray, prev_read_w: np.ndarray, log: TrafficLog
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``f = L w_r`` / ``b = L^T w_r`` with blockwise psum traffic.

        Like :meth:`_linkage_update`, traffic is logged per linkage block
        while the compute dispatches through the backend seam (reference:
        one stacked matmul pair; tuned: a fused single-pass panel sweep).
        The NoC events stay identical whichever kernel computes — the
        dataflow is a property of the partition, not of the kernel
        fusion — while the profiler's bytes column tracks the backend
        via ``access.bytes_touched``.
        """
        cfg = self.config
        mmap = self.memory_map
        r = prev_read_w.shape[-2]
        b = self._traffic_words(_lead_batch(prev_read_w.shape[:-2]))
        nt_h, nt_w = mmap.nt_h, mmap.nt_w
        for t in range(cfg.num_tiles):
            rows, cols = mmap.linkage_block(t)
            # Operand segments arrive from their row-wise owners.
            for owner in mmap.row_segment_owners(cols):
                log.add("forward_backward", owner, t, b * r * mmap.rows_per_tile)
            for owner in mmap.row_segment_owners(rows):
                log.add("forward_backward", owner, t, b * r * mmap.rows_per_tile)
            # Partial results reduce across the block row/column; the last
            # tile in each chain forwards to the segment owner.
            bi, bj = mmap.linkage_grid_index(t)
            if bj + 1 < nt_w:
                log.add("forward_backward", t, t + 1, b * r * mmap.block_rows)
            if bi + 1 < nt_h:
                log.add("forward_backward", t, t + nt_w, b * r * mmap.block_cols)
        return self.backend.forward_backward(
            linkage, prev_read_w, active=self._fused_active
        )

    def _usage_sort(self, usage: np.ndarray, log: TrafficLog) -> np.ndarray:
        """Sorted order via the configured sorter, with traffic.

        ``usage`` is ``(N,)`` or batched ``(B, N)``; the returned order has
        the same shape.  Both the two-stage sorter and the skimmed order
        are batch-vectorized, so no path here loops over batch elements
        in Python.
        """
        cfg = self.config
        ct = self.memory_map.ct_node
        n_local = cfg.local_rows
        b = self._traffic_words(_lead_batch(usage.shape[:-1]))
        if cfg.skim_fraction > 0.0:
            order = skimmed_sort_order(usage, cfg.skim_fraction)
            effective = cfg.effective_sort_length
            per_tile = max(1, effective // cfg.num_tiles)
        elif self.sorter is not None:
            _, order = self.sorter.sort(usage)
            per_tile = n_local
        else:
            order = self.backend.argsort(usage)
            per_tile = n_local
        for t in range(cfg.num_tiles):
            log.add("usage_sort", t, ct, b * per_tile)  # (sorted) shard to CT
            log.add("usage_sort", ct, t, b * per_tile)  # merged order back
        return order

    # ------------------------------------------------------------------
    # DNC-D mode: purely local tiles, fully stacked
    # ------------------------------------------------------------------
    def _step_distributed(
        self, x: np.ndarray, state: NumpyDNCState
    ) -> Tuple[np.ndarray, NumpyDNCState]:
        """DNC-D: every tile updates only its shard; reads merge at the CT.

        The global linkage matrix keeps only the block-diagonal (each
        tile's local ``n x n`` linkage); read vectors merge with uniform
        weights (the trainable ``alpha`` lives in the learned model,
        :class:`repro.dnc.distributed.DNCD`).

        The per-tile loop is folded into a leading stack axis: every
        kernel runs once over ``(..., Nt, n)`` shards as a stacked
        einsum/matmul (see :mod:`repro.core.kernels`), under an optional
        leading batch axis.

        **Workspace-backed masked steps** (``self._active_workspace``
        set by the full-occupancy masked path): the stacked shard
        operands of the fused write kernel are *views* of the state
        arrays, and the workspace's stacked output buffers become the
        next state's storage — so without care step ``t+1`` would read
        and write the same memory.  The de-aliasing contract: the three
        fused-kernel inputs are first copied into engine-owned resident
        staging buffers (``_dncd_stage``), after which the state arrays
        have no remaining readers and the outputs may land in the one
        stable workspace buffer set (stage-and-overwrite rather than the
        non-distributed ping-pong).  The full linkage likewise scatters
        into a resident zeroed buffer (``_dncd_scatter_out``) instead of
        a fresh N^2 allocation — DNC-D linkage never has off-block mass,
        so the off-block zeros written once at buffer creation hold
        forever.
        """
        cfg = self.config
        ref = self.reference
        ct = self.memory_map.ct_node
        nt = cfg.num_tiles
        w, r = cfg.word_size, cfg.num_reads
        log = self.traffic
        lead = x.shape[:-1]
        b = _lead_batch(lead)

        lstm_h, lstm_c, interface = self._controller(x, state)
        for t in range(nt):
            log.add("interface_broadcast", ct, t, b * ref.config.interface_size)

        # Stack row-wise shards along a tile axis: (..., Nt, n[, W]).
        local_mem = SK.shard_matrix(state.memory, nt)
        local_usage_prev = SK.shard_vector(state.usage, nt)
        local_write_prev = SK.shard_vector(state.write_w, nt)
        local_prec_prev = SK.shard_vector(state.precedence, nt)
        local_read_prev = SK.shard_heads(state.read_w, nt)
        local_link_prev = SK.block_diagonal(state.linkage, nt)

        # Batched gates need a broadcast tile axis; unbatched ones are
        # plain floats and broadcast as-is.
        def gate(g):
            return g[..., None] if isinstance(g, np.ndarray) else g

        scores = self.backend.stacked_write_scores(
            local_mem, interface.write_key
        )
        content_w = self._softmax(gate(interface.write_strength) * scores)

        psi = K.retention(interface.free_gates[..., None, :], local_read_prev)
        local_usage = K.usage_update(local_usage_prev, local_write_prev, psi)
        if cfg.skim_fraction > 0.0:
            order = skimmed_sort_order(local_usage, cfg.skim_fraction)
        else:
            order = self.backend.argsort(local_usage)
        alloc = K.allocation_from_order(local_usage, order)
        local_write_w = K.write_weight_merge(
            content_w, alloc,
            gate(interface.write_gate), gate(interface.allocation_gate),
        )
        if cfg.fused_write_linkage:
            local_mem_in, local_link_in, local_prec_in = (
                local_mem, local_link_prev, local_prec_prev,
            )
            if self._active_workspace is not None:
                # De-alias the view-sharded operands (see docstring).
                local_mem_in = self._dncd_stage("mem_in", local_mem)
                local_link_in = self._dncd_stage("link_in", local_link_prev)
                local_prec_in = self._dncd_stage("prec_in", local_prec_prev)
            local_new_mem, local_link, local_prec = (
                self.backend.fused_erase_write_linkage
            )(
                local_mem_in, local_link_in, local_prec_in, local_write_w,
                interface.erase[..., None, :],
                interface.write_vector[..., None, :],
                workspace=self._active_workspace,
            )
        else:
            local_new_mem = K.erase_write(
                local_mem, local_write_w,
                interface.erase[..., None, :],
                interface.write_vector[..., None, :],
            )
            local_link = K.linkage_update(
                local_link_prev, local_write_w, local_prec_prev
            )
            local_prec = K.precedence_update(local_prec_prev, local_write_w)

        local_rscores = self.backend.stacked_read_scores(
            local_new_mem, interface.read_keys
        )
        local_content_r = self._softmax(
            interface.read_strengths[..., None, :, None] * local_rscores, axis=-1
        )
        local_fwd, local_bwd = self.backend.forward_backward(
            local_link, local_read_prev
        )
        local_read_w = self.backend.read_weight_mix(
            local_content_r, local_fwd, local_bwd,
            interface.read_modes[..., None, :, :],
        )
        local_reads = self.backend.read_vectors(local_new_mem, local_read_w)

        # Eq. (4) with uniform alpha: the engine models dataflow, the
        # trained alpha lives in repro.dnc.distributed.DNCD.
        read_vecs = (local_reads / nt).sum(axis=-3)
        for t in range(nt):
            log.add("read_vector_collect", t, ct, b * r * w)

        y = self._output(lstm_h, read_vecs)
        if self._active_workspace is not None and cfg.fused_write_linkage:
            # Resident scatter target: the state's linkage storage under
            # workspace-backed masked stepping, overwritten in place
            # (its previous blocks were staged above).
            linkage_full = SK.scatter_block_diagonal(
                local_link, out=self._dncd_scatter_out(state.linkage)
            )
        else:
            linkage_full = SK.scatter_block_diagonal(local_link)
        new_state = NumpyDNCState(
            memory=SK.unshard_matrix(local_new_mem),
            usage=SK.unshard_vector(local_usage),
            precedence=SK.unshard_vector(local_prec),
            linkage=linkage_full,
            write_w=SK.unshard_vector(local_write_w),
            read_w=SK.unshard_heads(local_read_w),
            read_vecs=read_vecs,
            lstm_h=lstm_h, lstm_c=lstm_c,
        )
        return y, new_state

    def _dncd_stage(self, name: str, view: np.ndarray) -> np.ndarray:
        """Copy a view-sharded operand into an engine-owned resident buffer."""
        key = (name, view.shape, view.dtype.str)
        buf = self._dncd_scratch.get(key)
        if buf is None:
            buf = np.empty(view.shape, dtype=view.dtype)
            self._dncd_scratch[key] = buf
        np.copyto(buf, view)
        return buf

    def _dncd_scatter_out(self, like: np.ndarray) -> np.ndarray:
        """Resident zeroed buffer for the full block-diagonal linkage."""
        key = ("scatter_out", like.shape, like.dtype.str)
        buf = self._dncd_scratch.get(key)
        if buf is None:
            # Zeroed once: only diagonal blocks are ever written, and
            # DNC-D linkage has no off-block mass, so the invariant holds.
            buf = np.zeros(like.shape, dtype=like.dtype)
            self._dncd_scratch[key] = buf
        return buf

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _controller(self, x: np.ndarray, state: NumpyDNCState):
        ref = self.reference
        h = ref.config.hidden_size
        controller_in = np.concatenate(
            [x, state.read_vecs.reshape(x.shape[:-1] + (-1,))], axis=-1
        )
        gates = controller_in @ ref.w_x + state.lstm_h @ ref.w_h + ref.b
        i_g = K._sigmoid(gates[..., 0 * h : 1 * h])
        f_g = K._sigmoid(gates[..., 1 * h : 2 * h])
        g_g = np.tanh(gates[..., 2 * h : 3 * h])
        o_g = K._sigmoid(gates[..., 3 * h : 4 * h])
        lstm_c = f_g * state.lstm_c + i_g * g_g
        lstm_h = o_g * np.tanh(lstm_c)
        flat = lstm_h @ ref.w_if + ref.b_if
        interface = K.parse_interface(
            flat, ref.config.word_size, ref.config.num_reads
        )
        return lstm_h, lstm_c, interface

    def _output(self, lstm_h: np.ndarray, read_vecs: np.ndarray) -> np.ndarray:
        ref = self.reference
        output_in = np.concatenate(
            [lstm_h, read_vecs.reshape(lstm_h.shape[:-1] + (-1,))], axis=-1
        )
        return output_in @ ref.w_y + ref.b_y

    def _softmax(self, scores: np.ndarray, axis: int = -1) -> np.ndarray:
        approx = self.reference.config.softmax_approx
        if approx is not None:
            return approx.softmax(scores, axis=axis)
        return K.exact_softmax(scores, axis=axis)

    #: Per-dtype divergence tolerance for :meth:`verify_against_reference`.
    #: float64 keeps the historical 1e-9 bound; float32 accumulates
    #: rounding through the recurrent state, so the bound is loosened to
    #: what a few steps of ~1e-7 relative error can produce.
    #: Per-dtype bars for :meth:`verify_against_reference`.  The
    #: reduced-precision entries cover the torch backend computing the
    #: hot path in true half precision against the float32-storage
    #: reference model: ``bfloat16`` keeps 8 mantissa bits (~4e-3
    #: relative per op) and ``float16`` 11 (~5e-4), amplified over the
    #: recurrent verify trajectory.
    VERIFY_TOLERANCES = {
        "float64": 1e-9,
        "float32": 1e-3,
        "float16": 1e-1,
        "bfloat16": 2.5e-1,
    }

    def verify_against_reference(
        self,
        steps: int = 3,
        rng: SeedLike = 7,
        batch_size: Optional[int] = None,
        tol: Optional[float] = None,
    ) -> float:
        """Run both paths on random input; return max abs output error.

        With ``batch_size=None`` this compares the sharded execution
        against the monolithic reference DNC.  With a ``batch_size`` it
        instead compares :meth:`run_batch` element-wise against ``B``
        independent unbatched :meth:`run` calls — the batched hot path
        must reproduce the sequential path exactly.

        Raises :class:`~repro.errors.SimulationError` in DNC mode (or for
        any batched comparison) if the paths diverge beyond ``tol``,
        which defaults to the dtype policy's entry in
        :attr:`VERIFY_TOLERANCES`.
        """
        from repro.utils.rng import new_rng

        if tol is None:
            tol = self.VERIFY_TOLERANCES[self.config.dtype]
        gen = new_rng(rng)
        if batch_size is None:
            inputs = gen.standard_normal((steps, self.reference.config.input_size))
            ours = self.run(inputs)
            reference_out = self.reference.run(inputs)
            error = float(np.max(np.abs(ours - reference_out)))
            if not self.config.distributed and error > tol:
                raise SimulationError(
                    f"tiled execution diverged from reference (max err {error:.3e})"
                )
            return error

        inputs = gen.standard_normal(
            (steps, batch_size, self.reference.config.input_size)
        )
        batched = self.run_batch(inputs)
        error = 0.0
        for i in range(batch_size):
            sequential = self.run(inputs[:, i])
            error = max(error, float(np.max(np.abs(batched[:, i] - sequential))))
        if error > tol:
            raise SimulationError(
                f"batched execution diverged from sequential (max err {error:.3e})"
            )
        return error


__all__ = [
    "TiledEngine",
    "TrafficLog",
    "TrafficEvent",
    "gather_states",
    "scatter_states",
]
