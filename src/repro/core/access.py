"""Memory-access policy layer: dense (verbatim) vs top-K sparse addressing.

The DNC step has exactly five phases whose cost scales with the memory
size ``N``: content-based write weighting, usage-sort/allocation, the
write phase (erase+write, linkage, precedence), the forward/backward
temporal weightings, and the read weighting/read-vector gather.  This
module puts those five phases behind an :class:`AccessPolicy` interface
so :class:`repro.core.engine.TiledEngine` can swap the *addressing
scheme* without touching the controller, the interface parsing, the
retention/usage arithmetic, or any of the serving stack above it.

Two policies:

* :class:`DenseAccess` — the paper's path, verbatim.  The method bodies
  are the exact kernel calls (and the exact traffic-log sequences) the
  engine ran before this layer existed, so dense trajectories are
  bitwise-identical to the pre-refactor engine.
* :class:`SparseAccess` — Rae et al.-style sparse access memory: top-K
  content addressing, top-K allocation (the ``skim_fraction``
  argpartition idiom generalized), a K-row sparse write/linkage kernel
  (:func:`repro.core.kernels.sparse_erase_write_linkage_inplace`), sparse
  forward/backward over the previous read weights' support, and top-K
  read-weight truncation.  Per-step cost drops from O(N^2) to O(K·N)
  while the state representation (:class:`repro.dnc.numpy_ref.NumpyDNCState`)
  stays dense — only the *support* is sparse — so checkpointing,
  migration, and the whole serving stack work unchanged.

  At ``K = N`` the sparse path reproduces the dense path to <=1e-10
  (bitwise through the write phase): the top-K selections become
  index-ordered identity gathers, the allocation reuses the reference
  :func:`repro.dnc.numpy_ref.allocation_from_order` kernel with the same
  stable tie-break, and the sparse write kernel's column+row passes
  reduce to the fused kernel's dense formula.

Traffic accounting: the sparse policy logs the same message *pattern*
(endpoints, event order) as the dense path, but the word counts of the
N-scaling events (linkage segment distribution, usage sort,
forward/backward operands and psums) scale with K rather than N —
that is the dataflow a sparse-access HiMA tile array would move.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core import kernels as SK
from repro.core.config import HiMAConfig
from repro.dnc import numpy_ref as K


def _lead_batch(lead: Tuple[int, ...]) -> int:
    b = 1
    for d in lead:
        b *= int(d)
    return b


def _topk_largest(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries along the last axis, index-sorted.

    Index-sorting the selection makes the subsequent gather order
    deterministic and, at ``k = N``, an identity permutation — which is
    what makes the K=N sparse path reduce to the dense arithmetic
    (gather → compute → scatter becomes compute in place).
    """
    n = values.shape[-1]
    if k >= n:
        return np.broadcast_to(np.arange(n), values.shape)
    part = np.argpartition(values, n - k, axis=-1)[..., n - k :]
    return np.sort(part, axis=-1)


def _topk_smallest(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest entries along the last axis, index-sorted."""
    n = values.shape[-1]
    if k >= n:
        return np.broadcast_to(np.arange(n), values.shape)
    part = np.argpartition(values, k - 1, axis=-1)[..., :k]
    return np.sort(part, axis=-1)


class AccessPolicy:
    """Strategy interface for the five N-scaling phases of a DNC step.

    Every method receives the calling engine (for config, memory map,
    softmax policy, and the masked-step plumbing) plus the traffic log
    and the word multiplier ``b`` (the active-slot count under a masked
    dense step, else the lead batch).  Implementations own both the
    arithmetic *and* the traffic events of their phase, so word
    accounting scales with whatever the policy actually moves.
    """

    #: Sparse policies route every masked step through the engine's
    #: dense-capacity path and skip the fused-workspace ping-pong.
    is_sparse = False
    name = "dense"

    def write_content(self, engine, state, interface, log, b):
        """Content-based write weighting ``(..., N)`` from the write key."""
        raise NotImplementedError

    def allocation(self, engine, usage, log, b):
        """Allocation weighting ``(..., N)`` from the updated usage."""
        raise NotImplementedError

    def write_phase(self, engine, state, write_w, interface, log, b):
        """Erase+write, linkage, precedence → ``(memory, linkage, precedence)``.

        Under the engine's masked dense step (``engine._fused_active``
        set) the policy must update the resident arrays of the active
        slots in place and return them; otherwise it must leave
        ``state`` unmutated and return fresh (or workspace-backed)
        arrays.
        """
        raise NotImplementedError

    def read_content(self, engine, memory, interface, log, b):
        """Content-based read weighting ``(..., R, N)`` on the new memory."""
        raise NotImplementedError

    def forward_backward(self, engine, linkage, prev_read_w, log):
        """Temporal forward/backward weightings ``(..., R, N)`` pair."""
        raise NotImplementedError

    def read_weights(self, engine, content_r, fwd, bwd, read_modes):
        """Merge content/forward/backward into the read weighting."""
        raise NotImplementedError

    def read_vectors(self, engine, memory, read_w, log, b):
        """Weighted read ``(..., R, W)`` plus the psum-reduction traffic."""
        raise NotImplementedError

    # -- profiling ----------------------------------------------------

    def support_rows(self, engine) -> int:
        """Rows of access support per step: ``N`` dense, ``K`` sparse."""
        return engine.config.memory_size

    def bytes_touched(self, phase: str, engine, b: int) -> int:
        """Estimated bytes moved by ``phase`` this step (profiling).

        Feeds the :class:`repro.obs.profiler.PhaseTimer` bytes column:
        the per-slot element model lives in
        :func:`repro.core.kernels.phase_touched_bytes` with the policy
        contributing its support size, so sparse phases report the
        O(K·N) footprint they actually touch.  The read phase's linkage
        pass count comes from the backend (a fused sweep streams the
        linkage once, the reference matvec pair twice); the sparse read
        kernel always gathers both the support rows and columns, so the
        sparse policy keeps the two-pass model over its K-row support.
        """
        cfg = engine.config
        per_slot = SK.phase_touched_bytes(
            phase,
            n=cfg.memory_size,
            w=cfg.word_size,
            r=cfg.num_reads,
            rows=self.support_rows(engine),
            hidden=cfg.hidden_size,
            read_linkage_passes=(
                2 if self.is_sparse else engine.backend.read_linkage_passes
            ),
        )
        return b * per_slot * np.dtype(cfg.np_dtype).itemsize


class DenseAccess(AccessPolicy):
    """The paper's dense addressing path, verbatim.

    Each method body is the exact code (kernel calls, ufunc order, and
    traffic-log sequence) that lived inline in
    ``TiledEngine._step_dnc`` before the policy layer: dense
    trajectories are bitwise-identical to the pre-refactor engine at
    equal dispatch order.
    """

    is_sparse = False
    name = "dense"

    def write_content(self, engine, state, interface, log, b):
        nt = engine.config.num_tiles
        ct = engine.memory_map.ct_node
        # Row-wise shards: normalization fully local; scores need one
        # global softmax -> tiles exchange (max, sum) psums with the CT.
        scores = engine.backend.write_scores(state.memory, interface.write_key)
        for t in range(nt):
            log.add("similarity", t, ct, 2 * b)  # local max + local exp-sum
        content_w = engine._softmax(interface.write_strength * scores)
        for t in range(nt):
            log.add("similarity", ct, t, 2 * b)  # global max + normalizer back
        return content_w

    def allocation(self, engine, usage, log, b):
        order = engine._usage_sort(usage, log)
        alloc = K.allocation_from_order(usage, order)
        # Running product hand-off between tiles in sorted order.
        for hop in range(engine.config.num_tiles - 1):
            log.add("allocation", hop, hop + 1, b)
        return alloc

    def write_phase(self, engine, state, write_w, interface, log, b):
        cfg = engine.config
        nt = cfg.num_tiles
        ct = engine.memory_map.ct_node
        # Traffic follows the blockwise dataflow exactly as before; the
        # arithmetic runs through the fused single-sweep kernel by
        # default (bitwise identical to the three-pass path, which the
        # ``fused_write_linkage=False`` escape hatch preserves verbatim).
        engine._log_linkage_traffic(b)
        # Global sum of w_w: psum ring ending at the CT.
        for hop in range(nt - 1):
            log.add("precedence", hop, hop + 1, b)
        log.add("precedence", nt - 1, ct, b)
        if cfg.fused_write_linkage and engine._fused_active is not None:
            # Partial-occupancy dense masked step: advance only the
            # active slots, in place on the resident arrays — the
            # inactive N^2 rows are neither read nor written.
            engine.backend.fused_erase_write_linkage_inplace(
                state.memory, state.linkage, state.precedence,
                write_w, interface.erase, interface.write_vector,
                active=engine._fused_active, scratch=engine._masked_scratch,
            )
            return state.memory, state.linkage, state.precedence
        if cfg.fused_write_linkage:
            return engine.backend.fused_erase_write_linkage(
                state.memory, state.linkage, state.precedence,
                write_w, interface.erase, interface.write_vector,
                workspace=engine._active_workspace,
            )
        memory = K.erase_write(
            state.memory, write_w, interface.erase, interface.write_vector
        )
        linkage = engine._linkage_update(state, write_w)
        precedence = K.precedence_update(state.precedence, write_w)
        return memory, linkage, precedence

    def read_content(self, engine, memory, interface, log, b):
        nt = engine.config.num_tiles
        ct = engine.memory_map.ct_node
        r = engine.config.num_reads
        rscores = engine.backend.read_scores(memory, interface.read_keys)
        for t in range(nt):
            log.add("similarity", t, ct, 2 * b * r)
        content_r = engine._softmax(
            interface.read_strengths[..., None] * rscores, axis=-1
        )
        for t in range(nt):
            log.add("similarity", ct, t, 2 * b * r)
        return content_r

    def forward_backward(self, engine, linkage, prev_read_w, log):
        return engine._forward_backward(linkage, prev_read_w, log)

    def read_weights(self, engine, content_r, fwd, bwd, read_modes):
        return engine.backend.read_weight_mix(content_r, fwd, bwd, read_modes)

    def read_vectors(self, engine, memory, read_w, log, b):
        cfg = engine.config
        ct = engine.memory_map.ct_node
        # Under the masked dense step the inactive slots' reads are
        # discarded by the scatter, so the backend may skip them.
        read_vecs = engine.backend.read_vectors(
            memory, read_w, active=engine._fused_active
        )
        for t in range(cfg.num_tiles):
            log.add("memory_read", t, ct, b * cfg.num_reads * cfg.word_size)
        return read_vecs


class SparseAccess(AccessPolicy):
    """Top-K sparse addressing: O(K·N) per step on a dense state.

    The four approximations (everything else stays exact):

    * write content weighting: softmax over the K highest-scoring rows
      (zero elsewhere), so the write support has at most K content rows;
    * allocation: computed over the K *least-used* rows only — the
      ``skim_fraction`` argpartition idiom promoted from sort-skipping
      to the full allocation, reusing the reference
      :func:`repro.dnc.numpy_ref.allocation_from_order` arithmetic with
      its stable index tie-break on the gathered slice;
    * forward/backward: contracted over the previous read weights'
      top-K support instead of the full N×N matmul pair (the discarded
      entries are exactly zero, so this is lossless given the read
      truncation below);
    * read weights: merged weighting truncated to its K largest entries
      per head (unrenormalized, as in Rae et al.), which is what keeps
      the *next* step's forward/backward and read gather sparse.

    The write phase
    (:func:`repro.core.kernels.sparse_erase_write_linkage_inplace`)
    reproduces the dense linkage algebra on the ≤2K written rows;
    rows outside the write support keep their outgoing links undecayed
    until their own next write (the kernel's only approximation —
    vacuous at K = N, where the softmax support is every slot).
    Retention, usage, and precedence are O(N) elementwise and remain
    dense-exact.
    """

    is_sparse = True
    name = "sparse"

    def __init__(self, config: HiMAConfig):
        self.top_k = int(config.access_top_k)

    def support_rows(self, engine) -> int:
        return min(self.top_k, engine.config.memory_size)

    # -- content ------------------------------------------------------
    def _scatter_softmax(self, engine, scaled, idx):
        """Softmax over the selected entries, zero everywhere else."""
        vals = np.take_along_axis(scaled, idx, axis=-1)
        soft = engine._softmax(vals, axis=-1)
        out = np.zeros_like(scaled)
        np.put_along_axis(out, idx, soft, axis=-1)
        return out

    def write_content(self, engine, state, interface, log, b):
        nt = engine.config.num_tiles
        ct = engine.memory_map.ct_node
        # The similarity scan stays a dense O(N·W) matmul (it is BLAS
        # bound, not the hot term); sparsity enters at the softmax.
        scores = engine.backend.write_scores(state.memory, interface.write_key)
        for t in range(nt):
            log.add("similarity", t, ct, 2 * b)
        scaled = interface.write_strength * scores
        content_w = self._scatter_softmax(
            engine, scaled, _topk_largest(scaled, self.top_k)
        )
        for t in range(nt):
            log.add("similarity", ct, t, 2 * b)
        return content_w

    # -- allocation ---------------------------------------------------
    def allocation(self, engine, usage, log, b):
        cfg = engine.config
        ct = engine.memory_map.ct_node
        per_tile = max(1, self.top_k // cfg.num_tiles)
        for t in range(cfg.num_tiles):
            log.add("usage_sort", t, ct, b * per_tile)
            log.add("usage_sort", ct, t, b * per_tile)
        idx = _topk_smallest(usage, self.top_k)
        vals = np.take_along_axis(usage, idx, axis=-1)
        # Stable argsort of the gathered slice: ties break toward the
        # lower *memory* index because ``idx`` is index-sorted — the
        # same tie order as the dense stable argsort, which is what
        # makes K=N reproduce the dense allocation bitwise.
        sub_order = np.argsort(vals, axis=-1, kind="stable")
        alloc_k = K.allocation_from_order(vals, sub_order)
        alloc = np.zeros_like(usage)
        np.put_along_axis(alloc, idx, alloc_k, axis=-1)
        for hop in range(cfg.num_tiles - 1):
            log.add("allocation", hop, hop + 1, b)
        return alloc

    # -- write phase --------------------------------------------------
    def write_phase(self, engine, state, write_w, interface, log, b):
        cfg = engine.config
        mmap = engine.memory_map
        nt = cfg.num_tiles
        # Same blockwise message pattern as the dense path, but each
        # segment carries only the ≤K written rows' worth of operands.
        rows_k = max(1, self.top_k // nt)
        for t in range(nt):
            rows, cols = mmap.linkage_block(t)
            for owner in mmap.row_segment_owners(rows):
                log.add("linkage", owner, t, b * rows_k)
            for owner in mmap.row_segment_owners(cols):
                log.add("linkage", owner, t, 2 * b * rows_k)
        for hop in range(nt - 1):
            log.add("precedence", hop, hop + 1, b)
        log.add("precedence", nt - 1, mmap.ct_node, b)
        if engine._fused_active is not None:
            # Masked dense step: advance the active slots in place on
            # the resident arrays, touching only the written rows of
            # the O(N^2) fields.
            engine.backend.sparse_erase_write_linkage_inplace(
                state.memory, state.linkage, state.precedence,
                write_w, interface.erase, interface.write_vector,
                active=engine._fused_active,
            )
            return state.memory, state.linkage, state.precedence
        # Plain (caller-owned state) step: same arithmetic on copies —
        # the bitwise plain-vs-masked consistency the serving bar needs.
        return engine.backend.sparse_erase_write_linkage(
            state.memory, state.linkage, state.precedence,
            write_w, interface.erase, interface.write_vector,
        )

    # -- read ---------------------------------------------------------
    def read_content(self, engine, memory, interface, log, b):
        nt = engine.config.num_tiles
        ct = engine.memory_map.ct_node
        r = engine.config.num_reads
        rscores = engine.backend.read_scores(memory, interface.read_keys)
        for t in range(nt):
            log.add("similarity", t, ct, 2 * b * r)
        scaled = interface.read_strengths[..., None] * rscores
        content_r = self._scatter_softmax(
            engine, scaled, _topk_largest(scaled, self.top_k)
        )
        for t in range(nt):
            log.add("similarity", ct, t, 2 * b * r)
        return content_r

    def forward_backward(self, engine, linkage, prev_read_w, log):
        cfg = engine.config
        mmap = engine.memory_map
        r = prev_read_w.shape[-2]
        b = engine._traffic_words(_lead_batch(prev_read_w.shape[:-2]))
        # Dense message pattern, K-scaled words: operand segments and
        # psum chains carry the support rows only.
        rows_k = max(1, self.top_k // cfg.num_tiles)
        nt_h, nt_w = mmap.nt_h, mmap.nt_w
        for t in range(cfg.num_tiles):
            rows, cols = mmap.linkage_block(t)
            for owner in mmap.row_segment_owners(cols):
                log.add("forward_backward", owner, t, b * r * rows_k)
            for owner in mmap.row_segment_owners(rows):
                log.add("forward_backward", owner, t, b * r * rows_k)
            bi, bj = mmap.linkage_grid_index(t)
            if bj + 1 < nt_w:
                log.add("forward_backward", t, t + 1, b * r * rows_k)
            if bi + 1 < nt_h:
                log.add("forward_backward", t, t + nt_w, b * r * rows_k)
        # f = w_r L^T / b = w_r L contracted over the previous read
        # weights' support: the weights are non-negative with at most K
        # nonzeros per head (read truncation), so the dropped terms are
        # exact zeros.  The policy owns the support selection; the
        # ≤2K-row gather/contract kernel lives on the backend seam.
        idx = _topk_largest(prev_read_w, self.top_k)
        vals = np.take_along_axis(prev_read_w, idx, axis=-1)
        return engine.backend.sparse_forward_backward(linkage, vals, idx)

    def read_weights(self, engine, content_r, fwd, bwd, read_modes):
        read_w = engine.backend.read_weight_mix(content_r, fwd, bwd, read_modes)
        # Truncate to the K largest entries per head (no renormalize,
        # following Rae et al.) so the recurrent read support stays
        # sparse.  At K=N this is an identity copy.
        idx = _topk_largest(read_w, self.top_k)
        vals = np.take_along_axis(read_w, idx, axis=-1)
        out = np.zeros_like(read_w)
        np.put_along_axis(out, idx, vals, axis=-1)
        return out

    def read_vectors(self, engine, memory, read_w, log, b):
        cfg = engine.config
        ct = engine.memory_map.ct_node
        idx = _topk_largest(read_w, self.top_k)
        vals = np.take_along_axis(read_w, idx, axis=-1)
        read_vecs = engine.backend.sparse_read_vectors(memory, vals, idx)
        for t in range(cfg.num_tiles):
            log.add("memory_read", t, ct, b * cfg.num_reads * cfg.word_size)
        return read_vecs


def make_access_policy(config: HiMAConfig) -> AccessPolicy:
    """Instantiate the policy named by ``config.access_policy``."""
    if config.access_policy == "sparse":
        return SparseAccess(config)
    return DenseAccess()


__all__ = [
    "AccessPolicy",
    "DenseAccess",
    "SparseAccess",
    "make_access_policy",
]
