"""Kernel registry and stacked shard kernels.

Two things live here:

1. The paper's Table 1 as executable metadata: each :class:`KernelSpec`
   carries the kernel's type (access vs state), category, primitives, and
   callables computing external/state-memory access counts and NoC traffic
   for a given :class:`~repro.core.config.HiMAConfig`.  ``table1_rows``
   renders the table; the test suite checks the formulas against the
   instrumented reference DNC's measured counts.
2. *Stacked* shard kernels used by the tiled engine's vectorized hot
   path: helpers that reshape row-wise shards and linkage diagonal blocks
   into a leading tile axis so all per-tile work runs as one stacked
   einsum/matmul instead of a Python loop over tiles, optionally under an
   additional leading batch axis.
3. The *fused* write-phase kernel :func:`fused_erase_write_linkage`:
   erase+write, temporal-linkage, and precedence updates in one sweep
   over memory rows (bitwise identical to the three-pass reference
   kernels), with a masked variant that skips inactive batch slots for
   the serving layer's resident state arena.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import HiMAConfig
from repro.core.partition import (
    forward_backward_traffic_words,
    linkage_distribution_traffic,
)
from repro.dnc.instrumentation import KernelCategory


# ---------------------------------------------------------------------------
# Stacked shard kernels (batched, vectorized hot path)
#
# Shapes are written with ``...`` for arbitrary leading dimensions (none
# for a single sequence, ``B`` for a batch); ``Nt`` is the tile count and
# ``n = N / Nt`` the per-tile shard length.
# ---------------------------------------------------------------------------


def phase_touched_bytes(
    phase: str, *, n: int, w: int, r: int, rows: int, hidden: int,
    read_linkage_passes: int = 2,
) -> int:
    """Elements touched by one engine-step phase for one batch slot.

    The per-phase bytes model behind
    :meth:`repro.core.access.AccessPolicy.bytes_touched`: ``rows`` is the
    access support (``N`` dense, ``K`` sparse), so the N-scaling phases
    report the O(rows·N) footprint the policy actually moves.  These are
    element counts — the caller multiplies by batch and dtype itemsize.
    The estimates deliberately track the dominant arrays only (the same
    granularity as Table 1's access counts), not every temporary.

    ``read_linkage_passes`` is how many times the read phase streams the
    linkage support: 2 for the reference forward + backward matvec pair,
    1 when a backend fuses both sweeps into a single pass over the
    linkage (``KernelBackend.read_linkage_passes`` reports what the
    selected backend actually does).
    """
    if phase == "controller":
        # LSTM gate blocks over the hidden state.
        return 8 * hidden
    if phase == "content_addressing":
        # Memory scan for scores + the weight support (write or read).
        return n * w + rows * (1 + r)
    if phase == "sort_allocation":
        # Usage/retention/weight vectors + the sorted support.
        return 4 * n + rows
    if phase == "erase_write_linkage":
        # Linkage rows+columns of the support, written memory rows,
        # precedence.
        return 2 * n * rows + rows * w + 2 * n
    if phase == "read":
        # Forward/backward over the linkage support + weighted read.
        return read_linkage_passes * n * rows + r * rows * w + r * n
    if phase == "output":
        return hidden + r * w
    return 0


def shard_vector(x: np.ndarray, num_tiles: int) -> np.ndarray:
    """``(..., N)`` -> ``(..., Nt, n)`` row-wise shard stack (a view)."""
    return x.reshape(x.shape[:-1] + (num_tiles, -1))


def unshard_vector(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`shard_vector`: ``(..., Nt, n)`` -> ``(..., N)``."""
    return x.reshape(x.shape[:-2] + (-1,))


def shard_matrix(x: np.ndarray, num_tiles: int) -> np.ndarray:
    """``(..., N, W)`` -> ``(..., Nt, n, W)`` shard stack (a view)."""
    return x.reshape(x.shape[:-2] + (num_tiles, -1, x.shape[-1]))


def unshard_matrix(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`shard_matrix`: ``(..., Nt, n, W)`` -> ``(..., N, W)``."""
    return x.reshape(x.shape[:-3] + (-1, x.shape[-1]))


def shard_heads(read_w: np.ndarray, num_tiles: int) -> np.ndarray:
    """``(..., R, N)`` read weights -> ``(..., Nt, R, n)`` shard stack."""
    split = read_w.reshape(read_w.shape[:-1] + (num_tiles, -1))
    return np.moveaxis(split, -2, -3)


def unshard_heads(local_read_w: np.ndarray) -> np.ndarray:
    """Inverse of :func:`shard_heads`: ``(..., Nt, R, n)`` -> ``(..., R, N)``."""
    moved = np.moveaxis(local_read_w, -3, -2)
    return moved.reshape(moved.shape[:-2] + (-1,))


def block_diagonal(linkage: np.ndarray, num_tiles: int) -> np.ndarray:
    """Extract the ``Nt`` diagonal ``n x n`` blocks: ``(..., Nt, n, n)``."""
    n_local = linkage.shape[-1] // num_tiles
    grid = linkage.reshape(
        linkage.shape[:-2] + (num_tiles, n_local, num_tiles, n_local)
    )
    return np.einsum("...titj->...tij", grid)


def scatter_block_diagonal(
    blocks: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Place ``(..., Nt, n, n)`` blocks on the diagonal of a zero ``(..., N, N)``.

    The output keeps the blocks' dtype, so the engine-wide dtype policy
    flows through the stacked DNC-D path without silent upcasts.

    ``out`` — write the blocks into a caller-owned resident buffer
    instead of allocating a fresh ``(..., N, N)`` zero array every step.
    The caller must guarantee the buffer's off-diagonal-block cells are
    already zero (DNC-D linkage never has off-block mass, so a buffer
    that only ever receives linkage through this function keeps that
    invariant after a single zeroed initialization).
    """
    num_tiles, n_local = blocks.shape[-3], blocks.shape[-1]
    n = num_tiles * n_local
    if out is None:
        out = np.zeros(blocks.shape[:-3] + (n, n), dtype=blocks.dtype)
    elif out.shape != blocks.shape[:-3] + (n, n) or out.dtype != blocks.dtype:
        raise ValueError(
            f"scatter_block_diagonal out= has shape {out.shape} dtype "
            f"{out.dtype}; expected {blocks.shape[:-3] + (n, n)} "
            f"{blocks.dtype}"
        )
    for t in range(num_tiles):
        rows = slice(t * n_local, (t + 1) * n_local)
        out[..., rows, rows] = blocks[..., t, :, :]
    return out


def stacked_key_scores(
    local_mem_unit: np.ndarray, key_unit: np.ndarray
) -> np.ndarray:
    """Per-tile content scores ``(..., Nt, n)`` for one write key ``(..., W)``."""
    return np.einsum("...tnw,...w->...tn", local_mem_unit, key_unit)


def stacked_read_scores(
    rkey_unit: np.ndarray, local_mem_unit: np.ndarray
) -> np.ndarray:
    """Per-tile read-head scores ``(..., Nt, R, n)`` for keys ``(..., R, W)``."""
    return np.einsum("...rw,...tnw->...trn", rkey_unit, local_mem_unit)


# ---------------------------------------------------------------------------
# Fused write-phase kernel
# ---------------------------------------------------------------------------


class FusedWriteWorkspace:
    """Resident output + scratch buffers for :func:`fused_erase_write_linkage`.

    Allocating the two linkage-sized arrays (the new linkage and the
    ``w x p`` outer-product term) fresh every step costs more in page
    faults than the arithmetic itself once ``N`` is a few hundred.  A
    workspace keeps one set of buffers per (shape, dtype) and the kernel
    writes into them instead, so a long-running caller — the engine's
    masked in-place step driving the serving arena — touches warm pages
    every tick.

    Ownership contract: the arrays returned by a ``workspace=`` call are
    owned by the workspace until the caller either copies them out or
    hands replacement buffers back via :meth:`recycle` (the engine's
    dense masked step does the latter, ping-ponging the arena's previous
    arrays in as the next tick's outputs).  Calling the kernel again for
    the same shapes without doing one of those overwrites the previous
    results.
    """

    #: Output roles, in the order the kernel returns them (and the order
    #: :meth:`recycle` expects donated arrays in).
    ROLES = ("memory", "linkage", "precedence")

    def __init__(self):
        self._buffers = {}

    @staticmethod
    def _key(role: str, array: np.ndarray) -> Tuple:
        # Role is part of the key: memory (N, W) and linkage (N, N)
        # coincide in shape whenever N == W, and they must never share a
        # buffer.
        return (role, array.shape, array.dtype.str)

    def _get(self, role: str, like: np.ndarray) -> np.ndarray:
        key = self._key(role, like)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(like.shape, dtype=like.dtype)
            self._buffers[key] = buf
        return buf

    def recycle(
        self, memory: np.ndarray, linkage: np.ndarray, precedence: np.ndarray
    ) -> None:
        """Donate arrays (e.g. a previous state's buffers) as future outputs."""
        for role, array in zip(self.ROLES, (memory, linkage, precedence)):
            self._buffers[self._key(role, array)] = array


def fused_erase_write_linkage(
    memory: np.ndarray,
    linkage: np.ndarray,
    precedence: np.ndarray,
    write_w: np.ndarray,
    erase: np.ndarray,
    value: np.ndarray,
    active: Optional[np.ndarray] = None,
    workspace: Optional[FusedWriteWorkspace] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One fused sweep for the DNC write phase: erase+write, linkage, precedence.

    **Contract** (the one a hardware/GPU backend implements as a single
    pass over memory rows; the engine's default write path since the
    resident-arena PR):

    * inputs are the *previous* step's ``memory (..., N, W)``,
      ``linkage (..., N, N)``, ``precedence (..., N)`` plus this step's
      ``write_w (..., N)`` and the interface's ``erase`` / ``value``
      write vectors (broadcastable to ``(..., W)``);
    * returns ``(new_memory, new_linkage, new_precedence)`` **bitwise
      identical** to the three-pass sequence
      :func:`repro.dnc.numpy_ref.erase_write` →
      :func:`repro.dnc.numpy_ref.linkage_update` →
      :func:`repro.dnc.numpy_ref.precedence_update` (the per-row ufunc
      order is replicated exactly, so no tolerance is needed);
    * inputs are never mutated.

    The fusion wins by sharing the expanded ``write_w`` column across all
    three updates and running the two O(N^2)-shaped updates as in-place
    passes over a single temporary each, instead of three independent
    kernels each materializing full-size intermediates.

    ``active`` — the masked variant for slot-pinned batched state: an
    integer index array (or boolean mask) over the leading batch axis.
    Only the selected slots are computed; unselected slots of the outputs
    are bitwise copies of the inputs.  Skipping inactive slots keeps the
    kernel cost proportional to live occupancy rather than arena
    capacity.

    ``workspace`` — write outputs into a :class:`FusedWriteWorkspace`'s
    resident buffers instead of fresh allocations (still bitwise: every
    output element is overwritten, so buffer history never leaks).  See
    the workspace's ownership contract; without it the kernel returns
    freshly allocated arrays the caller owns outright.
    """
    if active is not None:
        if memory.ndim < 3:
            raise ValueError(
                "fused_erase_write_linkage(active=...) needs a leading "
                f"batch axis; got memory of shape {memory.shape}"
            )
        idx = np.asarray(active)
        if idx.dtype == np.bool_:
            idx = np.flatnonzero(idx)
        out_memory = memory.copy()
        out_linkage = linkage.copy()
        out_precedence = precedence.copy()
        if idx.size:
            sub = fused_erase_write_linkage(
                memory[idx], linkage[idx], precedence[idx],
                write_w[idx], np.broadcast_to(erase, write_w.shape[:-1]
                + erase.shape[-1:])[idx],
                np.broadcast_to(value, write_w.shape[:-1]
                + value.shape[-1:])[idx],
            )
            out_memory[idx], out_linkage[idx], out_precedence[idx] = sub
        return out_memory, out_linkage, out_precedence

    w_col = write_w[..., :, None]
    if workspace is None:
        new_memory = np.multiply(w_col, erase[..., None, :])
        new_linkage = np.subtract(1.0 - w_col, write_w[..., None, :])
        mem_term = w_col * value[..., None, :]
        link_term = w_col * precedence[..., None, :]
        new_precedence = np.empty_like(precedence)
    else:
        out_memory = workspace._get("memory", memory)
        out_linkage = workspace._get("linkage", linkage)
        out_precedence = workspace._get("precedence", precedence)
        if (out_memory is memory or out_linkage is linkage
                or out_precedence is precedence):
            raise ValueError(
                "workspace output buffer aliases its input; a caller "
                "recycled the arrays of the state it is about to step"
            )
        new_memory = np.multiply(w_col, erase[..., None, :], out=out_memory)
        new_linkage = np.subtract(
            1.0 - w_col, write_w[..., None, :], out=out_linkage
        )
        mem_term = np.multiply(
            w_col, value[..., None, :],
            out=workspace._get("memory_scratch", memory),
        )
        link_term = np.multiply(
            w_col, precedence[..., None, :],
            out=workspace._get("linkage_scratch", linkage),
        )
        new_precedence = out_precedence

    # Memory rows: m * (1 - w x e) + w x v, same ufunc order as
    # repro.dnc.numpy_ref.erase_write (bitwise contract).
    np.subtract(1.0, new_memory, out=new_memory)
    new_memory *= memory
    new_memory += mem_term

    # Linkage cells: ((1 - w_i) - w_j) * L + w_i * p_j, the reference
    # association, as in-place passes over at most two N^2 buffers.
    new_linkage *= linkage
    new_linkage += link_term
    n = write_w.shape[-1]
    new_linkage[..., np.arange(n), np.arange(n)] = 0.0

    # Precedence: (1 - sum w) * p + w, from the *previous* precedence.
    np.multiply(
        1.0 - write_w.sum(axis=-1, keepdims=True), precedence,
        out=new_precedence,
    )
    new_precedence += write_w
    return new_memory, new_linkage, new_precedence


def fused_erase_write_linkage_inplace(
    memory: np.ndarray,
    linkage: np.ndarray,
    precedence: np.ndarray,
    write_w: np.ndarray,
    erase: np.ndarray,
    value: np.ndarray,
    active: np.ndarray,
    scratch: Optional[Dict] = None,
) -> None:
    """Masked fused write phase mutating the resident arrays in place.

    The zero-copy companion of :func:`fused_erase_write_linkage` for
    slot-pinned batched state at *partial* occupancy: rows ``active`` of
    ``memory (B, N, W)``, ``linkage (B, N, N)``, and ``precedence
    (B, N)`` are advanced one write step **in place** — no full-capacity
    input copies, no gather of the O(N^2) fields — and every other row
    is left bitwise untouched.  Each active row's values are bitwise
    identical to :func:`fused_erase_write_linkage` on that row (the same
    ufunc sequence runs per slot, into a reused scratch buffer that is
    copied back only after every old value it depends on has been read).

    The per-slot loop is deliberate: a vectorized fancy-index pass would
    have to gather the active ``N^2`` rows first, which is exactly the
    copy this kernel exists to avoid; the loop body is a handful of
    whole-row vectorized ufuncs, so Python overhead is negligible
    against the O(N^2) arithmetic.

    ``scratch`` — an optional dict the caller keeps between invocations
    so the three per-slot buffers (one ``(N, W)``, two ``(N, N)``) are
    allocated once per (shape, dtype) rather than per call.
    """
    if memory.ndim < 3:
        raise ValueError(
            "fused_erase_write_linkage_inplace needs a leading batch "
            f"axis; got memory of shape {memory.shape}"
        )
    idx = np.asarray(active)
    if idx.dtype == np.bool_:
        idx = np.flatnonzero(idx)
    if idx.size == 0:
        return
    n = write_w.shape[-1]
    scratch = {} if scratch is None else scratch

    def buf(key: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        held = scratch.get(key)
        if held is None or held.shape != shape or held.dtype != dtype:
            held = np.empty(shape, dtype=dtype)
            scratch[key] = held
        return held

    mw = buf("mw", memory.shape[-2:], memory.dtype)
    nn = buf("nn", linkage.shape[-2:], linkage.dtype)
    nn2 = buf("nn2", linkage.shape[-2:], linkage.dtype)
    erase_b = np.broadcast_to(erase, write_w.shape[:-1] + erase.shape[-1:])
    value_b = np.broadcast_to(value, write_w.shape[:-1] + value.shape[-1:])
    diag = np.arange(n)
    for s in idx:
        m, link, p, w = memory[s], linkage[s], precedence[s], write_w[s]
        w_col = w[:, None]
        # Memory rows: m * (1 - w x e) + w x v, reference ufunc order.
        np.multiply(w_col, erase_b[s][None, :], out=mw)
        np.subtract(1.0, mw, out=mw)
        np.multiply(mw, m, out=mw)
        mw += w_col * value_b[s][None, :]
        # Linkage cells: ((1 - w_i) - w_j) * L + w_i * p_j.
        np.subtract(1.0 - w_col, w[None, :], out=nn)
        np.multiply(nn, link, out=nn)
        np.multiply(w_col, p[None, :], out=nn2)
        nn += nn2
        nn[diag, diag] = 0.0
        # Precedence reads old p; linkage above already consumed it too,
        # so it may now be overwritten: (1 - sum w) * p + w.
        np.multiply(1.0 - w.sum(), p, out=p)
        p += w
        m[...] = mw
        link[...] = nn


def sparse_erase_write_linkage_inplace(
    memory: np.ndarray,
    linkage: np.ndarray,
    precedence: np.ndarray,
    write_w: np.ndarray,
    erase: np.ndarray,
    value: np.ndarray,
    active: Optional[np.ndarray] = None,
) -> None:
    """K-row sparse write phase mutating the arrays in place.

    The sparse-access companion of
    :func:`fused_erase_write_linkage_inplace`: ``write_w`` rows carry a
    small support ``S`` (top-K content + top-K allocation positions, so
    ``|S| <= 2K``), and the update touches only O(|S|·N) *contiguous*
    cells instead of O(N^2):

    * memory rows in ``S`` get the full erase+write formula
      ``m * (1 - w x e) + w x v`` (reference ufunc order, bitwise);
    * linkage rows in ``S`` get the full
      ``((1 - w_i) - w_j) * L + w_i * p_j`` row update, identical
      ufunc-for-ufunc to :func:`fused_erase_write_linkage`.  Rows
      *outside* ``S`` are left untouched: the dense formula would decay
      their ``S`` columns by ``(1 - w_j)``, but applying that decay is
      a scattered-column pass whose cache traffic is effectively the
      whole matrix — the O(N^2) cost this kernel exists to avoid — so,
      following the sparse-memory literature, stale rows keep their
      outgoing links undecayed until their own next write.  This is the
      kernel's *only* approximation; the benchmark reports its measured
      trajectory cost as ``max/mean_abs_delta_vs_dense``.  At full
      support (softmax support is all ``N`` slots when K = N) every row
      is in ``S``, the skipped term is vacuous, and the kernel is
      bitwise-identical to :func:`fused_erase_write_linkage`;
    * precedence is a dense O(N) elementwise update (same as the fused
      kernel, bitwise), since it is never the hot term.

    Accepts unbatched ``(N, W)/(N, N)/(N,)`` state or batched
    ``(B, ...)``; ``active`` (int indices or bool mask over the leading
    batch axis) restricts the update to the selected slots, leaving the
    rest bitwise untouched — the serving arena's masked tick.
    """
    if memory.ndim == 2:
        if active is not None:
            raise ValueError(
                "sparse_erase_write_linkage_inplace(active=...) needs a "
                f"leading batch axis; got memory of shape {memory.shape}"
            )
        memory, linkage, precedence = (
            memory[None], linkage[None], precedence[None],
        )
        write_w = write_w[None]
        erase = np.asarray(erase)[None] if erase.ndim == 1 else erase
        value = np.asarray(value)[None] if value.ndim == 1 else value
    elif memory.ndim != 3:
        raise ValueError(
            "sparse_erase_write_linkage_inplace supports (N, W) or "
            f"(B, N, W) memory; got shape {memory.shape}"
        )
    if active is None:
        idx = np.arange(memory.shape[0])
    else:
        idx = np.asarray(active)
        if idx.dtype == np.bool_:
            idx = np.flatnonzero(idx)
    if idx.size == 0:
        return
    erase_b = np.broadcast_to(erase, write_w.shape[:-1] + erase.shape[-1:])
    value_b = np.broadcast_to(value, write_w.shape[:-1] + value.shape[-1:])
    for s in idx:
        m, link, p, w = memory[s], linkage[s], precedence[s], write_w[s]
        support = np.flatnonzero(w)
        if support.size == 0:
            continue
        w_s = w[support]
        w_col = w_s[:, None]
        # Memory rows S: m * (1 - w x e) + w x v, reference ufunc order.
        mw = np.multiply(w_col, erase_b[s][None, :])
        np.subtract(1.0, mw, out=mw)
        mw *= m[support]
        mw += w_col * value_b[s][None, :]
        # Linkage: full row update for rows in S (snapshot first so the
        # formula reads pre-update values).  Rows outside S are left
        # untouched — see the docstring's approximation note.
        rows_old = link[support, :].copy()
        new_rows = np.subtract(1.0 - w_col, w[None, :])
        new_rows *= rows_old
        new_rows += w_col * p[None, :]
        new_rows[np.arange(support.size), support] = 0.0
        link[support, :] = new_rows
        # Precedence reads old p; the linkage term above already
        # consumed it, so it may now be overwritten: (1 - sum w) * p + w.
        np.multiply(1.0 - w.sum(), p, out=p)
        p += w
        m[support] = mw


def sparse_erase_write_linkage(
    memory: np.ndarray,
    linkage: np.ndarray,
    precedence: np.ndarray,
    write_w: np.ndarray,
    erase: np.ndarray,
    value: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Non-mutating K-row sparse write phase.

    Copies the state and applies
    :func:`sparse_erase_write_linkage_inplace`, so a plain (unmasked)
    sparse step runs the *same arithmetic* as the arena's in-place
    masked tick — the bitwise plain-vs-masked consistency the serving
    bar depends on.  The O(N^2) linkage copy makes this the cold path;
    resident-state serving goes through the in-place kernel.
    """
    new_memory = memory.copy()
    new_linkage = linkage.copy()
    new_precedence = precedence.copy()
    sparse_erase_write_linkage_inplace(
        new_memory, new_linkage, new_precedence, write_w, erase, value
    )
    return new_memory, new_linkage, new_precedence


# ---------------------------------------------------------------------------
# Sparse read-phase kernels (K-support forward/backward + read gather)
# ---------------------------------------------------------------------------


def sparse_forward_backward(
    linkage: np.ndarray, vals: np.ndarray, idx: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Forward/backward matvecs over a top-K read-weight support.

    ``vals``/``idx`` are the ``(..., R, K)`` nonzero read-weight values
    and their index-sorted memory-row indices (from
    ``SparseAccess``'s top-K truncation).  Gathers the ≤K rows of the
    linkage (and of its transpose) the support touches and contracts
    over them — O(R·K·N) instead of the dense O(R·N^2) matmul pair.
    The dropped terms are exact zeros, so at full support this matches
    :func:`repro.dnc.numpy_ref.forward_backward` to rounding.
    """
    lead = vals.shape[:-2]
    r, n = vals.shape[-2], linkage.shape[-1]
    link = linkage.reshape((-1,) + linkage.shape[-2:])
    v = vals.reshape((-1,) + vals.shape[-2:])
    i = idx.reshape((-1,) + idx.shape[-2:])
    fidx = np.arange(link.shape[0])[:, None, None]
    bwd = np.einsum("frk,frkn->frn", v, link[fidx, i, :])
    link_t = np.swapaxes(link, -1, -2)
    fwd = np.einsum("frk,frkn->frn", v, link_t[fidx, i, :])
    return fwd.reshape(lead + (r, n)), bwd.reshape(lead + (r, n))


def sparse_read_vectors(
    memory: np.ndarray, vals: np.ndarray, idx: np.ndarray
) -> np.ndarray:
    """Weighted read over a top-K read-weight support.

    Same support convention as :func:`sparse_forward_backward`; gathers
    the ≤K memory rows per head and contracts — O(R·K·W) per slot.
    """
    lead = vals.shape[:-2]
    r = vals.shape[-2]
    mem = memory.reshape((-1,) + memory.shape[-2:])
    v = vals.reshape((-1,) + vals.shape[-2:])
    i = idx.reshape((-1,) + idx.shape[-2:])
    fidx = np.arange(mem.shape[0])[:, None, None]
    read_vecs = np.einsum("frk,frkw->frw", v, mem[fidx, i, :])
    return read_vecs.reshape(lead + (r, memory.shape[-1]))


@dataclass(frozen=True)
class KernelSpec:
    """One DNC kernel's Table 1 row."""

    name: str
    kernel_type: str  # "access" or "state"
    category: KernelCategory
    primitives: Tuple[str, ...]
    ext_mem_order: str  # big-O string from Table 1
    state_mem_order: str
    noc_order: str
    ext_mem_accesses: Callable[[HiMAConfig], int]
    state_mem_accesses: Callable[[HiMAConfig], int]
    ops: Callable[[HiMAConfig], int]
    noc_words: Callable[[HiMAConfig], float]


def _linkage_grid(config: HiMAConfig) -> Tuple[int, int]:
    return config.linkage_partition


def _no_traffic(config: HiMAConfig) -> float:
    return 0.0


KERNEL_REGISTRY: Dict[str, KernelSpec] = {}


def _register(spec: KernelSpec) -> None:
    KERNEL_REGISTRY[spec.name] = spec


_register(KernelSpec(
    name="normalize",
    kernel_type="access",
    category=KernelCategory.CONTENT_WEIGHTING,
    primitives=("inner-prod",),
    ext_mem_order="O(NW)",
    state_mem_order="O(W)",
    noc_order="O(Nt N)",
    ext_mem_accesses=lambda c: 2 * c.memory_size * c.word_size,
    state_mem_accesses=lambda c: (1 + c.num_reads) * c.word_size,
    ops=lambda c: 4 * c.memory_size * c.word_size
    + 2 * (1 + c.num_reads) * c.word_size,
    # Row-wise external partition keeps normalization local; a column
    # split would cost 2N(Nt_w - 1) (Eq. 1).
    noc_words=_no_traffic,
))

_register(KernelSpec(
    name="similarity",
    kernel_type="access",
    category=KernelCategory.CONTENT_WEIGHTING,
    primitives=("inner-prod", "softmax"),
    ext_mem_order="O(NW)",
    state_mem_order="O(W)",
    noc_order="O(Nt)",
    ext_mem_accesses=lambda c: 2 * c.memory_size * c.word_size,
    state_mem_accesses=lambda c: (1 + c.num_reads) * c.word_size,
    ops=lambda c: 2 * (1 + c.num_reads) * c.memory_size * c.word_size
    + 5 * (1 + c.num_reads) * c.memory_size,
    # Psum exchange + softmax redistribution: 2(Nt-1) per head group.
    noc_words=lambda c: 0.0 if c.distributed
    else 2.0 * (c.num_tiles - 1) * (1 + c.num_reads),
))

_register(KernelSpec(
    name="memory_write",
    kernel_type="access",
    category=KernelCategory.MEMORY_ACCESS,
    primitives=("el-add/sub/mult", "outer-prod"),
    ext_mem_order="O(NW)",
    state_mem_order="O(N)",
    noc_order="O(Nt N)",
    ext_mem_accesses=lambda c: 2 * c.memory_size * c.word_size,
    state_mem_accesses=lambda c: c.memory_size,
    ops=lambda c: 4 * c.memory_size * c.word_size,
    noc_words=_no_traffic,  # element-wise, fully local under row-wise split
))

_register(KernelSpec(
    name="memory_read",
    kernel_type="access",
    category=KernelCategory.MEMORY_ACCESS,
    primitives=("transpose", "mat-vec mult"),
    ext_mem_order="O(NW)",
    state_mem_order="O(N)",
    noc_order="O(Nt N W)",
    ext_mem_accesses=lambda c: c.memory_size * c.word_size,
    state_mem_accesses=lambda c: c.num_reads * c.memory_size,
    ops=lambda c: 2 * c.num_reads * c.memory_size * c.word_size,
    # Row-wise: psum reduction of R read vectors, W(Nt-1) words each.
    noc_words=lambda c: 0.0 if c.distributed
    else float(c.num_reads * c.word_size * (c.num_tiles - 1)),
))

_register(KernelSpec(
    name="retention",
    kernel_type="state",
    category=KernelCategory.HIST_WRITE_WEIGHTING,
    primitives=("el-mult", "vec acc-prod"),
    ext_mem_order="No",
    state_mem_order="O(RN)",
    noc_order="No",
    ext_mem_accesses=lambda c: 0,
    state_mem_accesses=lambda c: c.num_reads * c.memory_size,
    ops=lambda c: 2 * c.num_reads * c.memory_size,
    noc_words=_no_traffic,
))

_register(KernelSpec(
    name="usage",
    kernel_type="state",
    category=KernelCategory.HIST_WRITE_WEIGHTING,
    primitives=("el-add/sub/mult",),
    ext_mem_order="No",
    state_mem_order="O(N)",
    noc_order="No",
    ext_mem_accesses=lambda c: 0,
    state_mem_accesses=lambda c: 2 * c.memory_size,
    ops=lambda c: 4 * c.memory_size,
    noc_words=_no_traffic,
))

_register(KernelSpec(
    name="usage_sort",
    kernel_type="state",
    category=KernelCategory.HIST_WRITE_WEIGHTING,
    primitives=("sort",),
    ext_mem_order="No",
    state_mem_order="O(N)",
    noc_order="O(N)",
    ext_mem_accesses=lambda c: 0,
    state_mem_accesses=lambda c: c.memory_size,
    ops=lambda c: int(
        c.effective_sort_length * max(math.log2(max(c.effective_sort_length, 2)), 1)
    ),
    # Two-stage: sorted shards stream to the CT and sorted order returns.
    noc_words=lambda c: 0.0 if c.distributed else 2.0 * c.effective_sort_length,
))

_register(KernelSpec(
    name="allocation",
    kernel_type="state",
    category=KernelCategory.HIST_WRITE_WEIGHTING,
    primitives=("vec acc-prod",),
    ext_mem_order="No",
    state_mem_order="O(N)",
    noc_order="O(Nt)",
    ext_mem_accesses=lambda c: 0,
    state_mem_accesses=lambda c: c.memory_size,
    ops=lambda c: 3 * c.effective_sort_length,
    noc_words=lambda c: 0.0 if c.distributed else float(c.num_tiles - 1),
))

_register(KernelSpec(
    name="write_weight_merge",
    kernel_type="state",
    category=KernelCategory.HIST_WRITE_WEIGHTING,
    primitives=("el-add/sub",),
    ext_mem_order="No",
    state_mem_order="O(N)",
    noc_order="No",
    ext_mem_accesses=lambda c: 0,
    state_mem_accesses=lambda c: c.memory_size,
    ops=lambda c: 4 * c.memory_size,
    noc_words=_no_traffic,
))

_register(KernelSpec(
    name="linkage",
    kernel_type="state",
    category=KernelCategory.HIST_READ_WEIGHTING,
    primitives=("mat expand", "outer-prod", "el-add/sub/mult"),
    ext_mem_order="No",
    state_mem_order="O(N^2)",
    noc_order="O(Nt N)",
    ext_mem_accesses=lambda c: 0,
    state_mem_accesses=lambda c: (
        2 * (c.memory_size // c.num_tiles) ** 2 * c.num_tiles
        if c.distributed else 2 * c.memory_size**2
    ),
    ops=lambda c: (
        4 * (c.memory_size // c.num_tiles) ** 2 * c.num_tiles
        if c.distributed else 4 * c.memory_size**2
    ),
    noc_words=lambda c: 0.0 if c.distributed else linkage_distribution_traffic(
        c.memory_size, c.num_tiles, *c.linkage_partition
    ),
))

_register(KernelSpec(
    name="precedence",
    kernel_type="state",
    category=KernelCategory.HIST_READ_WEIGHTING,
    primitives=("el-add", "vec acc-sum"),
    ext_mem_order="No",
    state_mem_order="O(N)",
    noc_order="O(Nt)",
    ext_mem_accesses=lambda c: 0,
    state_mem_accesses=lambda c: 2 * c.memory_size,
    ops=lambda c: 3 * c.memory_size,
    noc_words=lambda c: 0.0 if c.distributed else float(c.num_tiles - 1),
))

_register(KernelSpec(
    name="forward_backward",
    kernel_type="state",
    category=KernelCategory.HIST_READ_WEIGHTING,
    primitives=("transpose", "mat-vec mult"),
    ext_mem_order="No",
    state_mem_order="O(N^2)",
    noc_order="O(Nt N^2)",
    ext_mem_accesses=lambda c: 0,
    state_mem_accesses=lambda c: (
        2 * (c.memory_size // c.num_tiles) ** 2 * c.num_tiles
        if c.distributed else 2 * c.memory_size**2
    ),
    ops=lambda c: (
        4 * c.num_reads * (c.memory_size // c.num_tiles) ** 2 * c.num_tiles
        if c.distributed else 4 * c.num_reads * c.memory_size**2
    ),
    noc_words=lambda c: 0.0 if c.distributed else forward_backward_traffic_words(
        c.memory_size, c.num_reads, c.num_tiles, *c.linkage_partition
    ),
))

_register(KernelSpec(
    name="read_weight_merge",
    kernel_type="state",
    category=KernelCategory.HIST_READ_WEIGHTING,
    primitives=("el-add",),
    ext_mem_order="No",
    state_mem_order="O(RN)",
    noc_order="No",
    ext_mem_accesses=lambda c: 0,
    state_mem_accesses=lambda c: c.num_reads * c.memory_size,
    ops=lambda c: 5 * c.num_reads * c.memory_size,
    noc_words=_no_traffic,
))


def table1_rows(config: HiMAConfig) -> List[List[str]]:
    """Render the registry as Table 1 rows for ``config``."""
    rows = []
    for spec in KERNEL_REGISTRY.values():
        rows.append([
            spec.kernel_type,
            spec.name,
            ", ".join(spec.primitives),
            spec.ext_mem_order,
            f"{spec.ext_mem_accesses(config):,}",
            spec.state_mem_order,
            f"{spec.state_mem_accesses(config):,}",
            spec.noc_order,
            f"{spec.noc_words(config):,.0f}",
        ])
    return rows


__all__ = [
    "KernelSpec",
    "KERNEL_REGISTRY",
    "table1_rows",
    "phase_touched_bytes",
    "shard_vector",
    "unshard_vector",
    "shard_matrix",
    "unshard_matrix",
    "shard_heads",
    "unshard_heads",
    "block_diagonal",
    "scatter_block_diagonal",
    "stacked_key_scores",
    "stacked_read_scores",
    "FusedWriteWorkspace",
    "fused_erase_write_linkage",
    "fused_erase_write_linkage_inplace",
    "sparse_erase_write_linkage",
    "sparse_erase_write_linkage_inplace",
    "sparse_forward_backward",
    "sparse_read_vectors",
]
