"""HiMA architecture configuration and prototype presets.

The three named prototypes of the paper's evaluation:

* **HiMA-baseline** — H-tree NoC (as MANNA), centralized usage sort at
  the CT, row-wise linkage partition.
* **HiMA-DNC** — all architectural features: multi-mode HiMA-NoC,
  two-stage usage sort, optimal submatrix-wise linkage partition.
* **HiMA-DNC-D** — HiMA-DNC plus the distributed DNC-D model (optionally
  with usage skimming and the approximate softmax).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace
from typing import Tuple

import numpy as np

from repro.errors import ConfigError
from repro.utils.validation import (
    DTYPE_CHOICES,
    EXTENDED_DTYPE_CHOICES,
    REDUCED_DTYPE_CHOICES,
    STORAGE_DTYPES,
    check_in,
    check_probability,
    check_positive,
)

_NOC_CHOICES = ("hima", "htree", "bintree", "mesh", "star", "ring")


@dataclass(frozen=True)
class HiMAConfig:
    """Full architecture + workload configuration.

    Defaults follow the paper's prototypes: ``N x W = 1024 x 64``, ``R=4``
    read heads, ``Nt=16`` PTs, 500 MHz, 32-bit datapath.
    """

    memory_size: int = 1024
    word_size: int = 64
    num_reads: int = 4
    num_tiles: int = 16
    hidden_size: int = 256

    # Architectural features (Figure 11(a) ladder).
    noc: str = "hima"
    two_stage_sort: bool = True
    submatrix_partition: bool = True

    # Algorithmic features (Section 5).
    distributed: bool = False
    skim_fraction: float = 0.0
    approx_softmax: bool = False

    #: Memory-access policy (see :mod:`repro.core.access`).  ``"dense"``
    #: is the verbatim paper path; ``"sparse"`` is Rae-style top-K
    #: content addressing with K-row sparse write/linkage updates and
    #: truncated read weightings — O(K·N) per step instead of O(N^2).
    #: Sparse access generalizes the ``skim_fraction`` argpartition idiom
    #: to every N-scaling phase, so the two are mutually exclusive; it
    #: owns the allocation order directly (argpartition + stable
    #: tie-break), bypassing the two-stage sorter, and is not available
    #: for the distributed (DNC-D) model whose state is view-sharded.
    access_policy: str = "dense"

    #: Rows kept per addressing step under ``access_policy="sparse"``
    #: (the K of top-K).  Must satisfy ``1 <= K <= memory_size``; at
    #: K = N the sparse path matches the dense path to <=1e-10 (bitwise
    #: through the write phase).  Must be 0 (unset) under dense access.
    access_top_k: int = 0

    #: Run the write phase (erase+write, linkage, precedence) through the
    #: fused single-sweep kernel
    #: :func:`repro.core.kernels.fused_erase_write_linkage` instead of
    #: three independent passes.  Bitwise identical either way (the fused
    #: kernel replicates the reference ufunc order exactly); the flag
    #: exists for A/B benchmarking and as an escape hatch.
    fused_write_linkage: bool = True

    #: Let the backend fuse the read phase's forward/backward linkage
    #: sweeps into one blocked pass (and route the read-weight mix
    #: through backend scratch).  Only backends with a fused read
    #: kernel honour it (``tuned``, ``torch``); the reference path is
    #: unaffected.  Like ``fused_write_linkage``, the flag exists for
    #: A/B benchmarking (the ``read_fused``/``read_unfused`` variants
    #: of ``BENCH_batched_throughput.json``) and as an escape hatch.
    read_phase_fused: bool = True

    #: Occupancy fraction at which a partially-masked step
    #: (:meth:`~repro.core.engine.TiledEngine.step` with ``active=``
    #: covering some but not all slots) switches from the compact
    #: gather/scatter path to the *dense-capacity* path: every cheap
    #: per-row kernel runs over the full resident batch (no gathers)
    #: while the O(N^2) write phase skips inactive slots in place via
    #: the masked fused kernel.  ``0.0`` always takes the dense path,
    #: ``1.0`` never does (full occupancy already has its own zero-copy
    #: fast path).  Non-distributed engines only — the DNC-D stacked
    #: kernels view-shard the state, so it keeps the compact path.
    masked_dense_min_occupancy: float = 0.75

    # Implementation parameters.
    macs_per_cycle: int = 2048  # per-PT M-M engine throughput
    link_words_per_cycle: int = 32  # NoC link width (words/flit)
    clock_hz: float = 500e6
    sequence_length: int = 8  # timesteps per inference "test"
    dtype: str = "float64"  # engine-wide numeric policy (see DTYPE_CHOICES)

    #: Kernel backend for the hot path (see :mod:`repro.core.backend`):
    #: ``"reference"`` is the verbatim numpy path, ``"tuned"`` the
    #: cache-blocked CPU backend (within ``VERIFY_TOLERANCES`` of the
    #: reference, faster at large N), ``"torch"`` the optional torch
    #: backend (CPU or CUDA; requires ``pip install repro-hima[torch]``).
    #: The reduced-precision dtypes (``float16``/``bfloat16``) require
    #: the torch backend.  The default honours the ``REPRO_BACKEND``
    #: environment variable (CI runs whole suites under the tuned
    #: backend this way); explicit ``backend=`` always wins.
    backend: str = field(
        default_factory=lambda: os.environ.get("REPRO_BACKEND", "reference")
    )

    def __post_init__(self):
        check_positive("memory_size", self.memory_size)
        check_positive("word_size", self.word_size)
        check_positive("num_reads", self.num_reads)
        check_positive("num_tiles", self.num_tiles)
        check_in("noc", self.noc, _NOC_CHOICES)
        check_probability("skim_fraction", self.skim_fraction)
        check_in("access_policy", self.access_policy, ("dense", "sparse"))
        if self.access_policy == "sparse":
            if not (1 <= self.access_top_k <= self.memory_size):
                raise ConfigError(
                    f"access_top_k must be in [1, memory_size] under sparse "
                    f"access, got {self.access_top_k} (memory_size="
                    f"{self.memory_size})"
                )
            if self.distributed:
                raise ConfigError(
                    "access_policy='sparse' is incompatible with the "
                    "distributed (DNC-D) model: the stacked tile kernels "
                    "view-shard the state dense"
                )
            if self.skim_fraction > 0.0:
                raise ConfigError(
                    "access_policy='sparse' subsumes usage skimming; set "
                    "skim_fraction=0.0"
                )
        elif self.access_top_k != 0:
            raise ConfigError(
                f"access_top_k ({self.access_top_k}) requires "
                f"access_policy='sparse'"
            )
        check_probability(
            "masked_dense_min_occupancy", self.masked_dense_min_occupancy
        )
        check_positive("macs_per_cycle", self.macs_per_cycle)
        check_positive("link_words_per_cycle", self.link_words_per_cycle)
        check_positive("sequence_length", self.sequence_length)
        check_in("dtype", self.dtype, EXTENDED_DTYPE_CHOICES)
        # Deferred import: backend.py imports kernels.py which imports
        # this module; by the time a config is *constructed* all three
        # are fully loaded.
        from repro.core.backend import check_backend_name

        check_backend_name(self.backend)
        if self.dtype in REDUCED_DTYPE_CHOICES and self.backend != "torch":
            raise ConfigError(
                f"dtype {self.dtype!r} is a reduced-precision compute dtype "
                f"and requires backend='torch' (numpy stores it as "
                f"{STORAGE_DTYPES[self.dtype]!r} but cannot compute in it); "
                f"install the extra: pip install 'repro-hima[torch]'"
            )
        if self.memory_size % self.num_tiles != 0:
            raise ConfigError(
                f"memory_size ({self.memory_size}) must be divisible by "
                f"num_tiles ({self.num_tiles})"
            )
        if self.num_tiles & (self.num_tiles - 1):
            raise ConfigError(
                f"num_tiles must be a power of two, got {self.num_tiles}"
            )

    # ------------------------------------------------------------------
    @property
    def np_dtype(self) -> np.dtype:
        """The numpy *storage* dtype every engine state/weight buffer uses.

        For the reduced-precision compute dtypes (``float16``,
        ``bfloat16``) this is ``float32`` — numpy state stays float32
        while the torch backend computes the hot path in the true half
        precision (see ``repro.utils.validation.STORAGE_DTYPES``).
        """
        return np.dtype(STORAGE_DTYPES[self.dtype])

    @property
    def local_rows(self) -> int:
        """External-memory rows per PT (row-wise partition)."""
        return self.memory_size // self.num_tiles

    @property
    def linkage_partition(self) -> Tuple[int, int]:
        """Linkage submatrix grid ``(Nt_h, Nt_w)``.

        Submatrix-wise: the Eq. (3) optimum (near-square, e.g. 4x4 at
        ``Nt=16``); otherwise row-wise ``(Nt, 1)``.
        """
        if not self.submatrix_partition:
            return (self.num_tiles, 1)
        from repro.core.partition import optimal_linkage_partition

        return optimal_linkage_partition(self.memory_size, self.num_tiles)

    @property
    def effective_sort_length(self) -> int:
        """Usage entries entering the sorter after skimming."""
        skimmed = int(math.floor(self.skim_fraction * self.memory_size))
        return self.memory_size - (skimmed if skimmed > 1 else 0)

    # ------------------------------------------------------------------
    # Prototype presets
    # ------------------------------------------------------------------
    @classmethod
    def baseline(cls, **overrides) -> "HiMAConfig":
        """HiMA-baseline: H-tree NoC, centralized sort, row-wise linkage."""
        base = dict(
            noc="htree", two_stage_sort=False, submatrix_partition=False,
            distributed=False,
        )
        base.update(overrides)
        return cls(**base)

    @classmethod
    def hima_dnc(cls, **overrides) -> "HiMAConfig":
        """HiMA-DNC: all architectural features."""
        return cls(**overrides)

    @classmethod
    def hima_dncd(cls, skim_fraction: float = 0.0, **overrides) -> "HiMAConfig":
        """HiMA-DNC-D: distributed model (optionally skimming/approx)."""
        base = dict(distributed=True, skim_fraction=skim_fraction)
        base.update(overrides)
        return cls(**base)

    def with_features(self, **changes) -> "HiMAConfig":
        """Functional update (frozen dataclass helper)."""
        return replace(self, **changes)


__all__ = ["HiMAConfig", "DTYPE_CHOICES"]
