"""HiMA core: the paper's primary contribution.

* :mod:`repro.core.config` — architecture configuration and the three
  prototype presets (HiMA-baseline, HiMA-DNC, HiMA-DNC-D),
* :mod:`repro.core.kernels` — the Table 1 kernel registry,
* :mod:`repro.core.backend` — pluggable kernel backends for the hot
  path (reference / tuned CPU / optional torch),
* :mod:`repro.core.partition` — submatrix-wise partition traffic models
  (Eqs. 1-3) and optimizers,
* :mod:`repro.core.mapping` — memory-to-tile placement,
* :mod:`repro.core.engine` — functional tiled execution with traffic
  accounting (validated against the monolithic reference DNC),
* :mod:`repro.core.perf_model` — the cycle-level performance model,
* :mod:`repro.core.baselines` — Farm / MANNA / GPU / CPU reference models,
* :mod:`repro.core.metrics` — throughput, area- and energy-efficiency.
"""

from repro.core.config import HiMAConfig
from repro.core.backend import (
    KernelBackend,
    available_backends,
    make_backend,
    register_backend,
)
from repro.core.kernels import KERNEL_REGISTRY, KernelSpec, table1_rows
from repro.core.partition import (
    Partition,
    content_weighting_traffic,
    memory_read_traffic,
    forward_backward_traffic,
    linkage_distribution_traffic,
    factor_pairs,
    optimal_external_partition,
    optimal_linkage_partition,
)
from repro.core.mapping import MemoryMap
from repro.core.engine import TiledEngine, TrafficLog
from repro.core.perf_model import HiMAPerformanceModel, KernelCycles
from repro.core.baselines import BASELINES, BaselineSpec, gpu_reference, cpu_reference
from repro.core.metrics import EfficiencyMetrics, compare_designs

__all__ = [
    "HiMAConfig",
    "KernelBackend",
    "available_backends",
    "make_backend",
    "register_backend",
    "KERNEL_REGISTRY",
    "KernelSpec",
    "table1_rows",
    "Partition",
    "content_weighting_traffic",
    "memory_read_traffic",
    "forward_backward_traffic",
    "linkage_distribution_traffic",
    "factor_pairs",
    "optimal_external_partition",
    "optimal_linkage_partition",
    "MemoryMap",
    "TiledEngine",
    "TrafficLog",
    "HiMAPerformanceModel",
    "KernelCycles",
    "BASELINES",
    "BaselineSpec",
    "gpu_reference",
    "cpu_reference",
    "EfficiencyMetrics",
    "compare_designs",
]
