"""Cycle-level performance model of HiMA inference.

Per-timestep latency is the sum over the Table 1 kernel chain of

    ``max(compute, overlap) + communication``

where compute comes from the M-M engine throughput model
(:class:`repro.hw.mm_engine.MMEngine`) or the sorter cycle models, and
communication is the *simulated* NoC makespan of the exact message set the
tiled execution engine logs for that kernel — so the ladder of Figure
11(a) (two-stage sort, HiMA-NoC, submatrix partition, DNC-D, skimming)
emerges from the same mechanisms the paper describes rather than from
fitted speedup factors.

The LSTM controller is pipelined against the memory unit (timestep
``t+1``'s controller overlaps timestep ``t``'s memory work), so only the
pipeline fill and the interface broadcast remain visible — matching the
paper's small NN share in Figure 11(b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import HiMAConfig
from repro.core.engine import TiledEngine
from repro.core.kernels import KERNEL_REGISTRY
from repro.dnc.instrumentation import KernelCategory
from repro.hw.mm_engine import MMEngine
from repro.hw.power_model import WorkloadActivity
from repro.hw.sorters import CentralizedMergeSorter, MDSASorter, TwoStageSorter
from repro.noc import NoCSimulator, build_topology
from repro.noc.packet import Message
from repro.utils.rng import SeedLike

#: Engine-log pseudo-kernels folded into Table 1 kernels for reporting.
_TRAFFIC_ALIASES = {
    "interface_broadcast": "lstm",
    "read_vector_collect": "memory_read",
}


@dataclass
class KernelCycles:
    """Latency split for one kernel in one timestep."""

    name: str
    category: KernelCategory
    compute: float
    comm: float

    @property
    def total(self) -> float:
        return self.compute + self.comm


class HiMAPerformanceModel:
    """End-to-end inference latency/activity model for one configuration."""

    def __init__(self, config: HiMAConfig, rng: SeedLike = 0):
        self.config = config
        self.mm_engine = MMEngine(config.macs_per_cycle)
        self.topology = build_topology(config.noc, config.num_tiles)
        self.noc = NoCSimulator(self.topology)
        self._engine = TiledEngine(config, rng=rng)
        self._kernel_comm: Optional[Dict[str, float]] = None
        self._kernel_words: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # Communication: simulate the engine's real per-kernel message sets
    # ------------------------------------------------------------------
    def _collect_traffic(self) -> None:
        if self._kernel_comm is not None:
            return
        engine = self._engine
        engine.traffic.clear()
        state = engine.initial_state()
        x = np.zeros(engine.reference.config.input_size)
        # Two steps: the first write leaves most state zero; the second
        # exercises the steady-state traffic.  Keep the second step's log.
        _, state = engine.step(x, state)
        engine.traffic.clear()
        engine.step(x, state)

        comm: Dict[str, float] = {}
        words: Dict[str, int] = {}
        by_kernel: Dict[str, List[Message]] = {}
        for kernel in set(e.kernel for e in engine.traffic.events):
            msgs = engine.traffic.messages(
                self.config.link_words_per_cycle, kernel=kernel
            )
            by_kernel[kernel] = msgs
        for kernel, msgs in by_kernel.items():
            target = _TRAFFIC_ALIASES.get(kernel, kernel)
            latency = self.noc.run(msgs).makespan if msgs else 0
            comm[target] = comm.get(target, 0.0) + latency
            kernel_words = sum(
                e.words for e in engine.traffic.events if e.kernel == kernel
            )
            words[target] = words.get(target, 0) + kernel_words
        self._kernel_comm = comm
        self._kernel_words = words

    # ------------------------------------------------------------------
    # Per-kernel cycles
    # ------------------------------------------------------------------
    def kernel_cycles(self) -> Dict[str, KernelCycles]:
        """Compute + communication cycles per kernel for one timestep."""
        self._collect_traffic()
        cfg = self.config
        result: Dict[str, KernelCycles] = {}
        for name, spec in KERNEL_REGISTRY.items():
            if name == "usage_sort":
                compute = self._sort_cycles()
            else:
                per_tile_ops = spec.ops(cfg) / cfg.num_tiles
                compute = self.mm_engine.cycles_for_ops(int(per_tile_ops))
            comm = self._kernel_comm.get(name, 0.0)
            if name == "usage_sort" and cfg.two_stage_sort and not cfg.distributed:
                # Shard streaming overlaps the CT merge phase.
                comm = max(0.0, comm - self._merge_cycles())
            result[name] = KernelCycles(name, spec.category, compute, comm)

        result["lstm"] = self._lstm_kernel()
        return result

    def _sort_cycles(self) -> float:
        cfg = self.config
        effective = cfg.effective_sort_length
        if cfg.distributed:
            local = MDSASorter(cfg.local_rows)
            return local.cycle_count(max(1, effective // cfg.num_tiles))
        if cfg.two_stage_sort:
            return TwoStageSorter(cfg.memory_size, cfg.num_tiles).cycle_count(
                effective
            )
        # Baseline prototype: the Fig. 7(a) pre-sort + merge controller.
        return CentralizedMergeSorter().pipelined_cycle_count(
            effective, num_streams=cfg.num_tiles
        )

    def _merge_cycles(self) -> float:
        cfg = self.config
        sorter = TwoStageSorter(cfg.memory_size, cfg.num_tiles)
        return sorter.stage_cycles()[1]

    def _lstm_kernel(self) -> KernelCycles:
        """Visible controller time: pipeline fill amortized + interface."""
        cfg = self.config
        controller_in = cfg.word_size + cfg.num_reads * cfg.word_size
        lstm_ops = 2 * (controller_in + cfg.hidden_size) * 4 * cfg.hidden_size
        output_ops = 2 * (cfg.hidden_size + cfg.num_reads * cfg.word_size) * (
            cfg.word_size
        )
        fill = self.mm_engine.cycles_for_ops(lstm_ops + output_ops)
        amortized = fill / cfg.sequence_length
        comm = self._kernel_comm.get("lstm", 0.0)
        return KernelCycles("lstm", KernelCategory.NN_LSTM, amortized, comm)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def timestep_cycles(self) -> float:
        return sum(k.total for k in self.kernel_cycles().values())

    def inference_cycles(self) -> float:
        """Cycles for one test (``sequence_length`` timesteps)."""
        return self.timestep_cycles() * self.config.sequence_length

    def inference_time_us(self) -> float:
        return self.inference_cycles() / self.config.clock_hz * 1e6

    def inference_time_s(self) -> float:
        return self.inference_cycles() / self.config.clock_hz

    def category_cycles(self) -> Dict[KernelCategory, float]:
        totals = {cat: 0.0 for cat in KernelCategory}
        for kernel in self.kernel_cycles().values():
            totals[kernel.category] += kernel.total
        return totals

    def category_fractions(self) -> Dict[KernelCategory, float]:
        totals = self.category_cycles()
        grand = sum(totals.values())
        return {cat: v / grand for cat, v in totals.items()}

    def speedup_over(self, other: "HiMAPerformanceModel") -> float:
        """How much faster this config is than ``other``."""
        return other.inference_time_s() / self.inference_time_s()

    # ------------------------------------------------------------------
    # Activity for the power model
    # ------------------------------------------------------------------
    def _hop_words(self) -> float:
        """Total word-hops of one timestep on this topology (real routes)."""
        self._collect_traffic()
        total = 0.0
        for event in self._engine.traffic.events:
            total += event.words * self.noc.routing.hops(event.src, event.dst)
        return total

    def activity(self) -> WorkloadActivity:
        """Per-timestep event counts (all PTs) for the power model."""
        self._collect_traffic()
        cfg = self.config
        total_ops = sum(
            spec.ops(cfg) for name, spec in KERNEL_REGISTRY.items()
        )
        accesses = sum(
            spec.ext_mem_accesses(cfg) + spec.state_mem_accesses(cfg)
            for spec in KERNEL_REGISTRY.values()
        )
        hop_words = self._hop_words()
        controller_in = cfg.word_size + cfg.num_reads * cfg.word_size
        lstm_ops = 2 * (controller_in + cfg.hidden_size) * 4 * cfg.hidden_size
        return WorkloadActivity(
            pt_ops=total_ops,
            mem_accesses=accesses,
            noc_hop_words=hop_words,
            lstm_ops=lstm_ops,
            num_tiles=cfg.num_tiles,
            timestep_cycles=self.timestep_cycles(),
            clock_hz=cfg.clock_hz,
        )

    def kernel_activity(self) -> Dict[str, WorkloadActivity]:
        """Per-kernel event counts (for the kernel power breakdown)."""
        self._collect_traffic()
        cfg = self.config
        cycles = self.kernel_cycles()
        result: Dict[str, WorkloadActivity] = {}
        for name, spec in KERNEL_REGISTRY.items():
            result[name] = WorkloadActivity(
                pt_ops=spec.ops(cfg),
                mem_accesses=spec.ext_mem_accesses(cfg) + spec.state_mem_accesses(cfg),
                noc_hop_words=self._kernel_words.get(name, 0) * 2.0,
                lstm_ops=0,
                num_tiles=cfg.num_tiles,
                timestep_cycles=max(cycles[name].total, 1.0),
                clock_hz=cfg.clock_hz,
            )
        controller_in = cfg.word_size + cfg.num_reads * cfg.word_size
        result["lstm"] = WorkloadActivity(
            pt_ops=0,
            mem_accesses=0,
            noc_hop_words=self._kernel_words.get("lstm", 0) * 2.0,
            lstm_ops=2 * (controller_in + cfg.hidden_size) * 4 * cfg.hidden_size,
            num_tiles=cfg.num_tiles,
            timestep_cycles=max(cycles["lstm"].total, 1.0),
            clock_hz=cfg.clock_hz,
        )
        return result


__all__ = ["HiMAPerformanceModel", "KernelCycles"]
