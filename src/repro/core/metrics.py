"""Speed / area-efficiency / energy-efficiency metrics (Fig. 12(b)-(d)).

Following the paper: area efficiency = throughput / area and energy
efficiency = throughput / power, with areas technology-normalized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.errors import ConfigError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class EfficiencyMetrics:
    """One design's headline numbers."""

    name: str
    seconds_per_test: float
    area_mm2: float
    power_w: float

    def __post_init__(self):
        check_positive("seconds_per_test", self.seconds_per_test)
        check_positive("area_mm2", self.area_mm2)
        check_positive("power_w", self.power_w)

    @property
    def throughput(self) -> float:
        """Tests per second."""
        return 1.0 / self.seconds_per_test

    @property
    def area_efficiency(self) -> float:
        return self.throughput / self.area_mm2

    @property
    def energy_efficiency(self) -> float:
        return self.throughput / self.power_w


def compare_designs(
    designs: Iterable[EfficiencyMetrics], reference: EfficiencyMetrics
) -> List[Dict[str, float]]:
    """Ratios of each design against ``reference`` (the paper's Fig. 12).

    Returns one dict per design with ``speedup``, ``area_ratio``,
    ``power_ratio``, ``area_eff_ratio``, ``energy_eff_ratio``.
    """
    rows = []
    for design in designs:
        rows.append({
            "name": design.name,
            "speedup": reference.seconds_per_test / design.seconds_per_test,
            "area_ratio": design.area_mm2 / reference.area_mm2,
            "power_ratio": design.power_w / reference.power_w,
            "area_eff_ratio": design.area_efficiency / reference.area_efficiency,
            "energy_eff_ratio": (
                design.energy_efficiency / reference.energy_efficiency
            ),
        })
    return rows


__all__ = ["EfficiencyMetrics", "compare_designs"]
