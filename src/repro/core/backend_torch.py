"""Optional torch kernel backend (CPU or CUDA); self-registers on import.

Importing this module requires torch (``pip install repro-hima[torch]``);
:func:`repro.core.backend._ensure_torch_registered` imports it lazily and
swallows the ImportError, so the rest of the package never depends on
torch being present.

The backend computes the hot-path kernels in torch on
``cuda`` when available (else CPU), round-tripping numpy arrays at the
seam: the engine's state stays numpy (the serving stack's arenas, wire
formats, and checkpoints are unchanged), and only the O(N^2) write
phase and the content-addressing matmuls cross into torch.  Under the
dtype policy the *storage* dtype is numpy (``bfloat16``/``float16``
store as float32 — see ``repro.utils.validation.STORAGE_DTYPES``) while
this backend computes in the true reduced precision, which is what the
per-dtype ``VERIFY_TOLERANCES`` entries absorb.

Half-precision note: l2 normalization accumulates the sum of squares in
float32 when computing in ``float16``/``bfloat16`` — the reference
epsilon (1e-8) underflows float16 and a zero-initialized memory would
normalize to NaN otherwise.  This is the standard mixed-precision
recipe and is covered by the dtype tolerances, not the bitwise bars.

The sparse write phase stays on the numpy reference kernels (it is
O(K·N) and gather-bound, not a bandwidth problem), as does the batched
argsort.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import torch

from repro.core import kernels as SK
from repro.core.backend import KernelBackend, register_backend

_COMPUTE_DTYPES = {
    "float64": torch.float64,
    "float32": torch.float32,
    "float16": torch.float16,
    "bfloat16": torch.bfloat16,
}

_NORM_EPSILON = 1e-8


class TorchBackend(KernelBackend):
    """Torch implementation of the hot-path kernels; numpy in, numpy out."""

    name = "torch"
    supported_dtypes = ("float64", "float32", "float16", "bfloat16")

    def __init__(self, config):
        self.device = torch.device(
            "cuda" if torch.cuda.is_available() else "cpu"
        )
        self.compute_dtype = _COMPUTE_DTYPES[config.dtype]
        # Numpy storage dtype the engine's state arrays use (float32 for
        # the reduced-precision compute dtypes).
        self._storage = config.np_dtype
        self._storage_torch = _COMPUTE_DTYPES[self._storage.name]
        # Read phase in torch (one seam crossing covers forward/backward,
        # mix, and gather — the whole tick now computes in the backend's
        # dtype).  ``read_phase_fused=False`` falls back to the numpy
        # reference read path for A/B runs.  The linkage still feeds two
        # matmuls here (torch owns the blocking), so the two-pass bytes
        # model stands.
        self.read_fused = bool(getattr(config, "read_phase_fused", True))
        if self.read_fused:
            self.read_phase_label = "read_phase"

    # -- seam crossings ----------------------------------------------------
    def _to(self, array: np.ndarray) -> torch.Tensor:
        tensor = torch.from_numpy(np.ascontiguousarray(array))
        return tensor.to(device=self.device, dtype=self.compute_dtype)

    def _from(self, tensor: torch.Tensor) -> np.ndarray:
        return tensor.to(dtype=self._storage_torch).cpu().numpy()

    def _unit(self, tensor: torch.Tensor) -> torch.Tensor:
        if self.compute_dtype in (torch.float16, torch.bfloat16):
            wide = tensor.to(torch.float32)
            norms = torch.sqrt(
                (wide * wide).sum(dim=-1, keepdim=True) + _NORM_EPSILON
            )
            return (wide / norms).to(self.compute_dtype)
        norms = torch.sqrt(
            (tensor * tensor).sum(dim=-1, keepdim=True) + _NORM_EPSILON
        )
        return tensor / norms

    # -- content addressing ------------------------------------------------
    def write_scores(self, memory, write_key):
        mem_unit = self._unit(self._to(memory))
        key_unit = self._unit(self._to(write_key))
        scores = torch.matmul(mem_unit, key_unit.unsqueeze(-1)).squeeze(-1)
        return self._from(scores)

    def read_scores(self, memory, read_keys):
        mem_unit = self._unit(self._to(memory))
        rkey_unit = self._unit(self._to(read_keys))
        scores = torch.matmul(rkey_unit, mem_unit.transpose(-1, -2))
        return self._from(scores)

    def stacked_write_scores(self, local_mem, write_key):
        mem_unit = self._unit(self._to(local_mem))
        key_unit = self._unit(self._to(write_key))
        scores = torch.einsum("...tnw,...w->...tn", mem_unit, key_unit)
        return self._from(scores)

    def stacked_read_scores(self, local_mem, read_keys):
        mem_unit = self._unit(self._to(local_mem))
        rkey_unit = self._unit(self._to(read_keys))
        scores = torch.einsum("...rw,...tnw->...trn", rkey_unit, mem_unit)
        return self._from(scores)

    # -- read phase ----------------------------------------------------
    # Dense read kernels in torch; the masked ``active=`` forms ride the
    # base class's gather/compute/scatter (which re-enters these on the
    # active sub-batch), and the K-support sparse forms stay on the
    # inherited numpy kernels — they are gather-bound, not a bandwidth
    # problem, same as the sparse write phase.

    def forward_backward(self, linkage, read_w, active=None):
        if not self.read_fused or active is not None:
            return super().forward_backward(linkage, read_w, active=active)
        link_t = self._to(linkage)
        rw_t = self._to(read_w)
        fwd = torch.matmul(rw_t, link_t.transpose(-1, -2))
        bwd = torch.matmul(rw_t, link_t)
        return self._from(fwd), self._from(bwd)

    def read_weight_mix(self, content_w, fwd, bwd, read_modes, active=None):
        if not self.read_fused or active is not None:
            return super().read_weight_mix(
                content_w, fwd, bwd, read_modes, active=active
            )
        modes = self._to(read_modes)
        mixed = (
            modes[..., 0:1] * self._to(bwd)
            + modes[..., 1:2] * self._to(content_w)
            + modes[..., 2:3] * self._to(fwd)
        )
        return self._from(mixed)

    def read_vectors(self, memory, read_w, active=None):
        if not self.read_fused or active is not None:
            return super().read_vectors(memory, read_w, active=active)
        reads = torch.matmul(self._to(read_w), self._to(memory))
        return self._from(reads)

    # -- fused dense write phase -------------------------------------------
    def _fused_torch(
        self,
        memory: torch.Tensor,
        linkage: torch.Tensor,
        precedence: torch.Tensor,
        write_w: torch.Tensor,
        erase: torch.Tensor,
        value: torch.Tensor,
    ) -> Tuple[torch.Tensor, torch.Tensor, torch.Tensor]:
        w_col = write_w.unsqueeze(-1)
        new_memory = (
            memory * (1.0 - w_col * erase.unsqueeze(-2))
            + w_col * value.unsqueeze(-2)
        )
        new_linkage = (
            ((1.0 - w_col) - write_w.unsqueeze(-2)) * linkage
            + w_col * precedence.unsqueeze(-2)
        )
        new_linkage.diagonal(dim1=-2, dim2=-1).zero_()
        new_precedence = (
            (1.0 - write_w.sum(dim=-1, keepdim=True)) * precedence + write_w
        )
        return new_memory, new_linkage, new_precedence

    def fused_erase_write_linkage(
        self, memory, linkage, precedence, write_w, erase, value,
        active=None, workspace=None,
    ):
        if active is not None:
            if memory.ndim < 3:
                raise ValueError(
                    "fused_erase_write_linkage(active=...) needs a leading "
                    f"batch axis; got memory of shape {memory.shape}"
                )
            idx = np.asarray(active)
            if idx.dtype == np.bool_:
                idx = np.flatnonzero(idx)
            out_memory = memory.copy()
            out_linkage = linkage.copy()
            out_precedence = precedence.copy()
            if idx.size:
                erase_b = np.broadcast_to(
                    erase, write_w.shape[:-1] + erase.shape[-1:]
                )
                value_b = np.broadcast_to(
                    value, write_w.shape[:-1] + value.shape[-1:]
                )
                sub = self.fused_erase_write_linkage(
                    memory[idx], linkage[idx], precedence[idx],
                    write_w[idx], erase_b[idx], value_b[idx],
                )
                out_memory[idx], out_linkage[idx], out_precedence[idx] = sub
            return out_memory, out_linkage, out_precedence

        new_m, new_l, new_p = self._fused_torch(
            self._to(memory), self._to(linkage), self._to(precedence),
            self._to(write_w), self._to(erase), self._to(value),
        )
        results = (self._from(new_m), self._from(new_l), self._from(new_p))
        if workspace is None:
            return results
        out_memory = workspace._get("memory", memory)
        out_linkage = workspace._get("linkage", linkage)
        out_precedence = workspace._get("precedence", precedence)
        if (out_memory is memory or out_linkage is linkage
                or out_precedence is precedence):
            raise ValueError(
                "workspace output buffer aliases its input; a caller "
                "recycled the arrays of the state it is about to step"
            )
        np.copyto(out_memory, results[0])
        np.copyto(out_linkage, results[1])
        np.copyto(out_precedence, results[2])
        return out_memory, out_linkage, out_precedence

    def fused_erase_write_linkage_inplace(
        self, memory, linkage, precedence, write_w, erase, value,
        active, scratch=None,
    ):
        if memory.ndim < 3:
            raise ValueError(
                "fused_erase_write_linkage_inplace needs a leading batch "
                f"axis; got memory of shape {memory.shape}"
            )
        idx = np.asarray(active)
        if idx.dtype == np.bool_:
            idx = np.flatnonzero(idx)
        if idx.size == 0:
            return
        erase_b = np.broadcast_to(erase, write_w.shape[:-1] + erase.shape[-1:])
        value_b = np.broadcast_to(value, write_w.shape[:-1] + value.shape[-1:])
        # Gather the active slots, compute in torch, scatter back.  The
        # per-row arithmetic is elementwise (plus a per-row sum), so a
        # row's values match the plain full-batch step regardless of
        # batch composition — the plain-vs-masked consistency the
        # serving bar needs.
        sub_m, sub_l, sub_p = self._fused_torch(
            self._to(memory[idx]), self._to(linkage[idx]),
            self._to(precedence[idx]), self._to(write_w[idx]),
            self._to(erase_b[idx]), self._to(value_b[idx]),
        )
        memory[idx] = self._from(sub_m)
        linkage[idx] = self._from(sub_l)
        precedence[idx] = self._from(sub_p)


register_backend("torch", TorchBackend)
