"""Pluggable kernel backends for the engine's bandwidth-bound hot path.

The O(N^2) erase/write/linkage phase and the content-addressing matmuls
dominate step time exactly where production configs live (N >= 256,
float64) — the numpy-on-CPU reference path saturates memory bandwidth
there, not arithmetic.  This module puts a seam under
:mod:`repro.core.kernels`: a :class:`KernelBackend` owns the hot-path
kernels (fused write phase, sparse write phase, content scores, batched
argsort), the engine constructs one per instance from
``HiMAConfig(backend=...)``, and every access policy / masked serving
path dispatches through it.

Three backends ship:

* ``reference`` — the verbatim numpy path.  Every method delegates to
  the exact pre-seam code, so all existing bitwise / <=1e-10 bars keep
  holding unchanged.
* ``tuned`` — a pure-numpy CPU backend that wins on bandwidth-bound
  configs while staying **bitwise identical** to ``reference``: the
  linkage update is cache-blocked over row panels (one read + one write
  DRAM sweep of the N^2 field instead of ~4), temporaries are resident
  per-backend scratch instead of fresh allocations, and content
  addressing routes through ``out=``.  Bitwise equality is by
  construction: every per-cell ufunc sequence is the reference one
  (IEEE-754 multiplication and addition are commutative for finite
  floats, so ``a *= b`` reproduces ``multiply(b, a)`` exactly), and
  block boundaries never move a reduction.
* ``torch`` — optional (``pip install repro-hima[torch]``), registered
  lazily when torch is importable; see
  :mod:`repro.core.backend_torch`.  Runs CPU or CUDA and brings up the
  reduced-precision dtypes (``float16``/``bfloat16``) under the
  existing dtype policy.

Backend instances are **per-engine** (scratch buffers are not shared
across the sharded serving stack's thread pools); ``make_backend``
returns a fresh instance every call.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core import kernels as SK
from repro.dnc import numpy_ref as K
from repro.errors import ConfigError

try:  # Optional accelerant: BLAS rank-1 update for the tuned linkage
    from scipy.linalg import blas as _scipy_blas  # sweep.  Without scipy
except ImportError:  # the tuned backend falls back to the two-pass
    _scipy_blas = None  # multiply-plus-add form (same blocking, same math).

#: BLAS ``?ger`` routines by dtype for the tuned backend's rank-1
#: linkage accumulation.  Only the exact-match single/double routines
#: are used — ``get_blas_funcs`` would silently upcast other dtypes
#: through a copy, defeating the in-place update.
_GER = {}
if _scipy_blas is not None:
    _GER = {"<f4": _scipy_blas.sger, "<f8": _scipy_blas.dger}

__all__ = [
    "BACKEND_CHOICES",
    "KernelBackend",
    "ReferenceBackend",
    "TunedBackend",
    "available_backends",
    "check_backend_name",
    "make_backend",
    "register_backend",
]

#: Built-in backend names, in documentation order.  ``torch`` is only
#: *constructible* when torch is importable, but the name is always
#: valid in ``HiMAConfig`` so configs can be built and serialized on
#: machines without the extra installed.
BACKEND_CHOICES = ("reference", "tuned", "torch")


class KernelBackend:
    """Hot-path kernel set behind the engine's write/content phases.

    Subclasses override the kernel methods; the contracts (shapes,
    ufunc-order bitwise guarantees, ``active``/``workspace``/``scratch``
    semantics) are those of the :mod:`repro.core.kernels` functions each
    method shadows.  The base class supplies the numpy batched argsort
    every CPU backend shares.
    """

    #: Registry name; set by subclasses.
    name = "abstract"
    #: Dtype-policy names this backend can compute under.
    supported_dtypes: Tuple[str, ...] = ("float64", "float32")

    #: PhaseTimer label the engine attributes read-phase time to.
    #: ``"read"`` is the classic unfused forward/backward + read path;
    #: backends whose read kernels fuse the linkage sweeps report
    #: ``"read_phase"`` so profiles distinguish the two (both labels
    #: live in :data:`repro.obs.profiler.PHASES`).
    read_phase_label = "read"

    #: How many times this backend's read phase streams the linkage
    #: support: 2 for the separate forward + backward matvecs, 1 for a
    #: fused single-pass sweep.  Feeds the
    #: :func:`repro.core.kernels.phase_touched_bytes` read model so the
    #: profiler's bytes column reflects what the kernel actually moves.
    read_linkage_passes = 2

    # -- content addressing ------------------------------------------------
    def write_scores(self, memory: np.ndarray, write_key: np.ndarray) -> np.ndarray:
        """Raw cosine scores ``(..., N)`` of one write key against memory."""
        raise NotImplementedError

    def read_scores(self, memory: np.ndarray, read_keys: np.ndarray) -> np.ndarray:
        """Raw cosine scores ``(..., R, N)`` of the read keys against memory."""
        raise NotImplementedError

    def stacked_write_scores(
        self, local_mem: np.ndarray, write_key: np.ndarray
    ) -> np.ndarray:
        """Per-tile write scores ``(..., Nt, n)`` for the stacked DNC-D path."""
        raise NotImplementedError

    def stacked_read_scores(
        self, local_mem: np.ndarray, read_keys: np.ndarray
    ) -> np.ndarray:
        """Per-tile read scores ``(..., Nt, R, n)`` for the stacked DNC-D path."""
        raise NotImplementedError

    # -- batched sorter ----------------------------------------------------
    def argsort(self, values: np.ndarray) -> np.ndarray:
        """Stable ascending argsort along the last axis."""
        return np.argsort(values, axis=-1, kind="stable")

    # -- fused dense write phase -------------------------------------------
    def fused_erase_write_linkage(
        self,
        memory: np.ndarray,
        linkage: np.ndarray,
        precedence: np.ndarray,
        write_w: np.ndarray,
        erase: np.ndarray,
        value: np.ndarray,
        active: Optional[np.ndarray] = None,
        workspace: Optional[SK.FusedWriteWorkspace] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        raise NotImplementedError

    def fused_erase_write_linkage_inplace(
        self,
        memory: np.ndarray,
        linkage: np.ndarray,
        precedence: np.ndarray,
        write_w: np.ndarray,
        erase: np.ndarray,
        value: np.ndarray,
        active: np.ndarray,
        scratch: Optional[Dict] = None,
    ) -> None:
        raise NotImplementedError

    # -- sparse write phase ------------------------------------------------
    def sparse_erase_write_linkage(
        self,
        memory: np.ndarray,
        linkage: np.ndarray,
        precedence: np.ndarray,
        write_w: np.ndarray,
        erase: np.ndarray,
        value: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Delegates to the reference sparse kernel (already O(K·N))."""
        return SK.sparse_erase_write_linkage(
            memory, linkage, precedence, write_w, erase, value
        )

    def sparse_erase_write_linkage_inplace(
        self,
        memory: np.ndarray,
        linkage: np.ndarray,
        precedence: np.ndarray,
        write_w: np.ndarray,
        erase: np.ndarray,
        value: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> None:
        SK.sparse_erase_write_linkage_inplace(
            memory, linkage, precedence, write_w, erase, value, active=active
        )

    # -- read phase ----------------------------------------------------
    # The base-class bodies ARE the pre-seam numpy path (like
    # ``argsort``): forward/backward is the stacked matmul pair of
    # :func:`repro.dnc.numpy_ref.forward_backward`, the mix is the
    # three-term merge, and the gather is ``read_w @ memory``.
    # ``ReferenceBackend`` inherits them unchanged, which is what keeps
    # dense trajectories bitwise on the pre-refactor engine.
    #
    # ``active`` contract (all three dense methods): ``None`` computes
    # the full batch; an index/bool array computes only those leading
    # batch slots and returns zeros in the inactive rows.  Per-slot
    # results are bitwise-equal to the full-batch call on the same rows
    # (the kernels are independent per batch element), matching the
    # masked-step scatter semantics of ``TiledEngine._step_masked_dense``.

    @staticmethod
    def _active_index(active, batch_like: np.ndarray) -> np.ndarray:
        if batch_like.ndim < 3:
            raise ValueError(
                "read kernels with active= need a leading batch axis; got "
                f"shape {batch_like.shape}"
            )
        idx = np.asarray(active)
        if idx.dtype == np.bool_:
            idx = np.flatnonzero(idx)
        return idx

    def forward_backward(
        self,
        linkage: np.ndarray,
        read_w: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Temporal weightings ``f = w_r L^T``, ``b = w_r L`` (both ``(..., R, N)``)."""
        if active is not None:
            idx = self._active_index(active, linkage)
            fwd = np.zeros_like(read_w)
            bwd = np.zeros_like(read_w)
            if idx.size:
                fwd[idx], bwd[idx] = self.forward_backward(
                    linkage[idx], read_w[idx]
                )
            return fwd, bwd
        return K.forward_backward(linkage, read_w)

    def read_weight_mix(
        self,
        content_w: np.ndarray,
        fwd: np.ndarray,
        bwd: np.ndarray,
        read_modes: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Three-mode merge of backward/content/forward weightings."""
        if active is not None:
            idx = self._active_index(active, content_w)
            out = np.zeros_like(content_w)
            if idx.size:
                modes_b = np.broadcast_to(
                    read_modes, content_w.shape[:-1] + read_modes.shape[-1:]
                )
                out[idx] = self.read_weight_mix(
                    content_w[idx], fwd[idx], bwd[idx], modes_b[idx]
                )
            return out
        return K.read_weight_merge(content_w, fwd, bwd, read_modes)

    def read_vectors(
        self,
        memory: np.ndarray,
        read_w: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Weighted read ``(..., R, W)`` of memory under the read weights."""
        if active is not None:
            idx = self._active_index(active, memory)
            out = np.zeros(
                read_w.shape[:-1] + (memory.shape[-1],), dtype=memory.dtype
            )
            if idx.size:
                out[idx] = self.read_vectors(memory[idx], read_w[idx])
            return out
        return K.read_vectors(memory, read_w)

    # K-support sparse forms: ``vals``/``idx`` are the top-K read-weight
    # support from ``SparseAccess`` (O(R·K·N) / O(R·K·W) gather-bound
    # kernels — every CPU backend shares the numpy reference bodies).
    def sparse_forward_backward(
        self, linkage: np.ndarray, vals: np.ndarray, idx: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        return SK.sparse_forward_backward(linkage, vals, idx)

    def sparse_read_vectors(
        self, memory: np.ndarray, vals: np.ndarray, idx: np.ndarray
    ) -> np.ndarray:
        return SK.sparse_read_vectors(memory, vals, idx)


class ReferenceBackend(KernelBackend):
    """The verbatim pre-seam numpy path.

    Every method body is the exact code that lived inline in
    ``DenseAccess``/``SparseAccess``/``TiledEngine._step_distributed``
    before the backend layer, so dense and sparse trajectories are
    bitwise-identical to the pre-refactor engine.
    """

    name = "reference"

    def write_scores(self, memory, write_key):
        key_unit = K.l2_normalize(write_key)
        mem_unit = K.l2_normalize(memory)
        return (mem_unit @ key_unit[..., :, None])[..., 0]

    def read_scores(self, memory, read_keys):
        rkey_unit = K.l2_normalize(read_keys)
        return rkey_unit @ np.swapaxes(K.l2_normalize(memory), -1, -2)

    def stacked_write_scores(self, local_mem, write_key):
        key_unit = K.l2_normalize(write_key)
        return SK.stacked_key_scores(K.l2_normalize(local_mem), key_unit)

    def stacked_read_scores(self, local_mem, read_keys):
        rkey_unit = K.l2_normalize(read_keys)
        return SK.stacked_read_scores(rkey_unit, K.l2_normalize(local_mem))

    def fused_erase_write_linkage(
        self, memory, linkage, precedence, write_w, erase, value,
        active=None, workspace=None,
    ):
        return SK.fused_erase_write_linkage(
            memory, linkage, precedence, write_w, erase, value,
            active=active, workspace=workspace,
        )

    def fused_erase_write_linkage_inplace(
        self, memory, linkage, precedence, write_w, erase, value,
        active, scratch=None,
    ):
        SK.fused_erase_write_linkage_inplace(
            memory, linkage, precedence, write_w, erase, value,
            active=active, scratch=scratch,
        )


class TunedBackend(ReferenceBackend):
    """Cache-blocked, scratch-resident CPU backend; bitwise == reference.

    Where the win comes from on bandwidth-bound configs (N >= 256, the
    whole write-phase working set past L3):

    * the linkage update streams the N^2 field once in row panels sized
      to stay cache-resident — the reference path sweeps it from DRAM
      ~4x (materialize, multiply, add, plus the ``w x p`` outer-product
      temporary) while the blocked pass reads each linkage panel once
      and writes each output panel once, with both small temporaries
      hot in cache;
    * the ``w_i * p_j`` rank-1 accumulation rides a single BLAS
      ``?ger`` sweep over each hot panel instead of the reference's
      multiply-into-scratch plus add — one FMA pass, no outer-product
      temporary, and on compute-throttled hosts one fewer elementwise
      kernel launch per panel;
    * the read phase's forward/backward matvec pair fuses into one
      blocked pass over the same row panels (see
      :meth:`forward_backward`): the linkage is streamed from DRAM once
      per tick instead of twice, and the read-weight mix rides resident
      scratch (:meth:`read_weight_mix`, bitwise on the reference);
    * the masked in-place path drops the two full N^2 scratch buffers
      and the copy-back entirely: panels of the resident linkage are
      updated where they live;
    * the memory-rows update routes through ``out=`` into per-backend
      resident scratch, so steady-state steps allocate nothing
      O(N^2)-shaped;
    * below :attr:`min_blocked_n` rows the whole write phase delegates
      to the reference kernels — panel bookkeeping costs more than it
      saves once the working set fits L2, and a tuned backend that
      loses on the small-N base config is not tuned.

    Content addressing factors the memory row norms out of the cosine
    dot product (see the note above the score methods): the matmul runs
    on raw memory and the small score panel is rescaled, instead of
    materializing a full unit-normalized copy of memory per call.
    The stacked DNC-D score paths stay on the inherited reference
    arithmetic — distributed tiles are small enough that the factored
    form has nothing to amortize.

    Numerics: the memory and precedence updates see the reference ufunc
    sequence exactly (in-place forms lean on IEEE-754 multiply/add
    commutativity; the only reduction, ``write_w.sum``, is taken
    unblocked), so those fields stay bitwise on the reference.  The
    linkage field's ``?ger`` accumulation rounds once per element where
    the reference rounds twice (multiply, then add), an ulp-scale
    per-step difference bounded by ``VERIFY_TOLERANCES`` for every
    supported dtype — trajectory-level equivalence is pinned in
    ``tests/test_backends.py``.  Panel boundaries are numerically
    irrelevant (every update is row-elementwise).
    """

    name = "tuned"

    #: Target bytes per streamed linkage panel (input panel, output
    #: panel, and per-panel temporary each get roughly this much, so the
    #: blocked working set is ~3x this).  Chosen to sit comfortably
    #: inside a per-core L2.
    panel_bytes = 1 << 18

    #: Below this many memory rows the write phase delegates to the
    #: reference kernels: the N^2 field already fits in cache and the
    #: panel/scratch bookkeeping is pure overhead there.
    min_blocked_n = 128

    def __init__(self, config=None):
        self._scratch: Dict[Tuple, np.ndarray] = {}
        #: The fused read-phase sweep honours the config's
        #: ``read_phase_fused`` A/B flag; a bare ``TunedBackend()``
        #: (tests, third-party construction) defaults to fused.
        self.read_fused = bool(getattr(config, "read_phase_fused", True))
        if self.read_fused:
            self.read_phase_label = "read_phase"
            self.read_linkage_passes = 1

    def _buf(self, tag: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (tag, shape, np.dtype(dtype).str)
        held = self._scratch.get(key)
        if held is None:
            held = np.empty(shape, dtype=dtype)
            self._scratch[key] = held
        return held

    def _panel_rows(self, linkage: np.ndarray) -> int:
        """Rows per linkage panel so one panel ~ :attr:`panel_bytes`."""
        n = linkage.shape[-1]
        lead = 1
        for dim in linkage.shape[:-2]:
            lead *= dim
        row_bytes = max(1, lead * n * linkage.dtype.itemsize)
        return max(1, min(n, self.panel_bytes // row_bytes))

    # -- content addressing ------------------------------------------------
    # Factored cosine scores: the reference materializes a full
    # unit-normalized copy of memory (an N*W write plus an N*W divide)
    # per addressing call; algebraically the row norms factor out of the
    # dot product, so the tuned form runs the matmul on raw memory and
    # rescales the (H, N) score panel by ``1/sqrt(|m_i|^2 + eps)`` —
    # same epsilon-floored math, O(H*N) divisions instead of O(N*W),
    # and no full-size normalized temporary.  (An ``out=``-routed
    # variant of the *reference* arithmetic was also A/B'd and measured
    # slower — BLAS picks a better path when it owns the output; the
    # win here is doing less work, not routing the same work.)

    def write_scores(self, memory, write_key):
        key_unit = K.l2_normalize(write_key)
        sq = np.einsum("...nw,...nw->...n", memory, memory)
        scores = (memory @ key_unit[..., :, None])[..., 0]
        scores /= np.sqrt(sq + K._NORM_EPSILON)
        return scores

    def read_scores(self, memory, read_keys):
        rkey_unit = K.l2_normalize(read_keys)
        sq = np.einsum("...nw,...nw->...n", memory, memory)
        scores = rkey_unit @ np.swapaxes(memory, -1, -2)
        scores /= np.sqrt(sq + K._NORM_EPSILON)[..., None, :]
        return scores

    # -- fused dense write phase -------------------------------------------
    def _linkage_panels(
        self,
        linkage_in: np.ndarray,
        out: np.ndarray,
        w_col: np.ndarray,
        write_w: np.ndarray,
        precedence: np.ndarray,
        inplace: bool,
    ) -> None:
        """Blocked ``((1 - w_i) - w_j) * L + w_i * p_j`` with zeroed diagonal.

        ``out`` may be ``linkage_in`` itself (``inplace=True``) — each
        panel's old values are fully consumed by the multiply before
        they are overwritten.
        """
        n = write_w.shape[-1]
        if (
            linkage_in.flags.c_contiguous
            and out.flags.c_contiguous
            and write_w.flags.c_contiguous
            and precedence.flags.c_contiguous
        ):
            # Contiguous fast path: stream each lead element's (n, n)
            # matrix through contiguous row panels.  Strided cross-lead
            # slabs measure ~25% slower on the same sweep.
            lin3 = linkage_in.reshape((-1, n, n))
            out3 = out.reshape((-1, n, n))
            w2 = write_w.reshape((-1, n))
            p2 = precedence.reshape((-1, n))
            rows_per = max(
                1,
                min(n, self.panel_bytes // max(1, n * linkage_in.dtype.itemsize)),
            )
            tmp = self._buf("fused.lpanel", (rows_per, n), linkage_in.dtype)
            ger = _GER.get(linkage_in.dtype.str)
            diag = np.arange(n)
            for b in range(lin3.shape[0]):
                lin_b, out_b = lin3[b], out3[b]
                wc = w2[b][:, None]
                w_row_b = w2[b][None, :]
                p_row_b = p2[b][None, :]
                omw_b = 1.0 - wc
                for r0 in range(0, n, rows_per):
                    r1 = min(n, r0 + rows_per)
                    t = tmp[: r1 - r0]
                    np.subtract(omw_b[r0:r1], w_row_b, out=t)
                    panel = out_b[r0:r1]
                    if inplace:
                        np.multiply(panel, t, out=panel)
                    else:
                        np.multiply(t, lin_b[r0:r1], out=panel)
                    if ger is not None:
                        # panel += w_i * p_j as one BLAS rank-1 pass:
                        # panel.T is F-contiguous (panel is a row slice
                        # of a C matrix), so ?ger updates it in place,
                        # fusing the reference's multiply-into-scratch
                        # and add sweeps into a single FMA sweep with
                        # one rounding per element.
                        ger(1.0, p2[b], w2[b][r0:r1], a=panel.T,
                            overwrite_a=1)
                    else:
                        np.multiply(wc[r0:r1], p_row_b, out=t)
                        panel += t
                out_b[diag, diag] = 0.0
            return
        w_row = write_w[..., None, :]
        p_row = precedence[..., None, :]
        omw = 1.0 - w_col
        rows_per = self._panel_rows(linkage_in)
        tmp = self._buf(
            "fused.ltmp", linkage_in.shape[:-2] + (rows_per, n), linkage_in.dtype
        )
        for r0 in range(0, n, rows_per):
            r1 = min(n, r0 + rows_per)
            rows = r1 - r0
            t = tmp[..., :rows, :]
            np.subtract(omw[..., r0:r1, :], w_row, out=t)
            panel = out[..., r0:r1, :]
            if inplace:
                # multiply(panel, t) == reference multiply(t, panel):
                # IEEE-754 multiplication is commutative bit-for-bit.
                np.multiply(panel, t, out=panel)
            else:
                np.multiply(t, linkage_in[..., r0:r1, :], out=panel)
            np.multiply(w_col[..., r0:r1, :], p_row, out=t)
            panel += t
            panel[..., np.arange(rows), np.arange(r0, r1)] = 0.0

    def fused_erase_write_linkage(
        self, memory, linkage, precedence, write_w, erase, value,
        active=None, workspace=None,
    ):
        if write_w.shape[-1] < self.min_blocked_n:
            return super().fused_erase_write_linkage(
                memory, linkage, precedence, write_w, erase, value,
                active=active, workspace=workspace,
            )
        if active is not None:
            # Masked variant: gather the active slots, run the plain
            # kernel, scatter into copies — the reference structure.
            if memory.ndim < 3:
                raise ValueError(
                    "fused_erase_write_linkage(active=...) needs a leading "
                    f"batch axis; got memory of shape {memory.shape}"
                )
            idx = np.asarray(active)
            if idx.dtype == np.bool_:
                idx = np.flatnonzero(idx)
            out_memory = memory.copy()
            out_linkage = linkage.copy()
            out_precedence = precedence.copy()
            if idx.size:
                erase_b = np.broadcast_to(
                    erase, write_w.shape[:-1] + erase.shape[-1:]
                )
                value_b = np.broadcast_to(
                    value, write_w.shape[:-1] + value.shape[-1:]
                )
                sub = self.fused_erase_write_linkage(
                    memory[idx], linkage[idx], precedence[idx],
                    write_w[idx], erase_b[idx], value_b[idx],
                )
                out_memory[idx], out_linkage[idx], out_precedence[idx] = sub
            return out_memory, out_linkage, out_precedence

        w_col = write_w[..., :, None]
        if workspace is None:
            # Outputs become caller-owned state arrays: they must be
            # fresh, never backend scratch.
            new_memory = np.empty_like(memory)
            new_linkage = np.empty_like(linkage)
            new_precedence = np.empty_like(precedence)
        else:
            new_memory = workspace._get("memory", memory)
            new_linkage = workspace._get("linkage", linkage)
            new_precedence = workspace._get("precedence", precedence)
            if (new_memory is memory or new_linkage is linkage
                    or new_precedence is precedence):
                raise ValueError(
                    "workspace output buffer aliases its input; a caller "
                    "recycled the arrays of the state it is about to step"
                )

        # Memory rows: m * (1 - w x e) + w x v, reference ufunc order;
        # the value term lands in resident scratch instead of a fresh
        # (..., N, W) temporary.
        np.multiply(w_col, erase[..., None, :], out=new_memory)
        np.subtract(1.0, new_memory, out=new_memory)
        new_memory *= memory
        mem_term = self._buf("fused.mterm", memory.shape, memory.dtype)
        np.multiply(w_col, value[..., None, :], out=mem_term)
        new_memory += mem_term

        self._linkage_panels(
            linkage, new_linkage, w_col, write_w, precedence, inplace=False
        )

        # Precedence: (1 - sum w) * p + w, from the previous precedence.
        wsum = write_w.sum(axis=-1, keepdims=True)
        np.subtract(1.0, wsum, out=wsum)
        np.multiply(wsum, precedence, out=new_precedence)
        new_precedence += write_w
        return new_memory, new_linkage, new_precedence

    def fused_erase_write_linkage_inplace(
        self, memory, linkage, precedence, write_w, erase, value,
        active, scratch=None,
    ):
        # ``scratch`` is accepted for interface parity but unused: the
        # backend's own buffers replace the caller-held dict, and the
        # two N^2 scratch arrays the reference kernel needs do not exist
        # here at all.
        if write_w.shape[-1] < self.min_blocked_n:
            return super().fused_erase_write_linkage_inplace(
                memory, linkage, precedence, write_w, erase, value,
                active=active, scratch=scratch,
            )
        if memory.ndim < 3:
            raise ValueError(
                "fused_erase_write_linkage_inplace needs a leading batch "
                f"axis; got memory of shape {memory.shape}"
            )
        idx = np.asarray(active)
        if idx.dtype == np.bool_:
            idx = np.flatnonzero(idx)
        if idx.size == 0:
            return
        erase_b = np.broadcast_to(erase, write_w.shape[:-1] + erase.shape[-1:])
        value_b = np.broadcast_to(value, write_w.shape[:-1] + value.shape[-1:])
        mw = self._buf("fused.mw", memory.shape[-2:], memory.dtype)
        for s in idx:
            m, link, p, w = memory[s], linkage[s], precedence[s], write_w[s]
            w_col = w[:, None]
            # Memory rows in place: (1 - w x e) is consumed by the
            # multiply before m is overwritten, and m *= mw reproduces
            # the reference multiply(mw, m) bit-for-bit.
            np.multiply(w_col, erase_b[s][None, :], out=mw)
            np.subtract(1.0, mw, out=mw)
            np.multiply(m, mw, out=m)
            np.multiply(w_col, value_b[s][None, :], out=mw)
            m += mw
            # Linkage panels updated where they live — no N^2 scratch,
            # no copy-back.
            self._linkage_panels(link, link, w_col, w, p, inplace=True)
            # Precedence reads old p; the panels above consumed it, so
            # it may now be overwritten: (1 - sum w) * p + w.
            np.multiply(1.0 - w.sum(), p, out=p)
            p += w

    # -- read phase ----------------------------------------------------
    def forward_backward(self, linkage, read_w, active=None):
        """Fused single-pass forward/backward over linkage row panels.

        The reference runs two full matmuls (``w_r L^T`` then
        ``w_r L``), streaming the N^2 linkage from DRAM twice per tick.
        Here each cache-resident row panel ``L[r0:r1]`` feeds *both*
        contractions while hot: the backward accumulates
        ``b += w_r[:, r0:r1] @ L[r0:r1]`` (a rank-panel update into a
        scratch psum) and the forward writes
        ``f[:, r0:r1] = w_r @ L[r0:r1].T`` — one read sweep of the
        linkage total.  Forward rows keep the reference's full-length
        dot products; the backward's panel-blocked reduction reorders
        the sum, so the result is tolerance-level (not bitwise) vs the
        reference — bounded by ``VERIFY_TOLERANCES`` and pinned in
        ``tests/test_backends.py``.

        Delegates to the reference pair below :attr:`min_blocked_n`
        (both matmuls already fit in cache), under ``active=`` (the
        masked base path gathers the sub-batch and re-enters here), for
        non-contiguous operands, and under ``read_phase_fused=False``.
        """
        n = linkage.shape[-1]
        if (
            not self.read_fused
            or active is not None
            or n < self.min_blocked_n
            or not (linkage.flags.c_contiguous and read_w.flags.c_contiguous)
        ):
            return super().forward_backward(linkage, read_w, active=active)
        r = read_w.shape[-2]
        lin3 = linkage.reshape((-1, n, n))
        rw3 = read_w.reshape((-1, r, n))
        # Outputs become step intermediates the caller retains (read_w
        # derives from them), so they must be fresh, never scratch.
        fwd = np.empty_like(read_w)
        bwd = np.empty_like(read_w)
        fwd3 = fwd.reshape((-1, r, n))
        bwd3 = bwd.reshape((-1, r, n))
        rows_per = max(
            1, min(n, self.panel_bytes // max(1, n * linkage.dtype.itemsize))
        )
        tmp = self._buf("read.psum", (r, n), linkage.dtype)
        for b in range(lin3.shape[0]):
            lin_b, rw_b = lin3[b], rw3[b]
            fwd_b, bwd_b = fwd3[b], bwd3[b]
            bwd_b[...] = 0.0
            for r0 in range(0, n, rows_per):
                r1 = min(n, r0 + rows_per)
                panel = lin_b[r0:r1]
                # Backward psum: the panel's rows contracted against the
                # matching read-weight columns, accumulated while hot.
                np.matmul(rw_b[:, r0:r1], panel, out=tmp)
                bwd_b += tmp
                # Forward columns r0:r1: full-length dot products against
                # the same resident panel's rows.
                np.matmul(rw_b, panel.T, out=fwd_b[:, r0:r1])
        return fwd, bwd

    def read_weight_mix(self, content_w, fwd, bwd, read_modes, active=None):
        """Scratch-resident three-term merge; bitwise == reference.

        Same association as the reference expression
        (``(m0*b + m1*c) + m2*f`` evaluated left to right), so only the
        temporaries change: two resident buffers instead of five fresh
        ``(.., R, N)`` allocations per step.
        """
        if not self.read_fused or active is not None:
            return super().read_weight_mix(
                content_w, fwd, bwd, read_modes, active=active
            )
        # Output becomes the state's read weighting: fresh, not scratch.
        out = np.multiply(read_modes[..., 0:1], bwd)
        tmp = self._buf("read.mix", out.shape, out.dtype)
        np.multiply(read_modes[..., 1:2], content_w, out=tmp)
        out += tmp
        np.multiply(read_modes[..., 2:3], fwd, out=tmp)
        out += tmp
        return out


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

BackendFactory = Callable[..., KernelBackend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register ``factory(config) -> KernelBackend`` under ``name``."""
    _REGISTRY[name] = factory


register_backend("reference", lambda config: ReferenceBackend())
register_backend("tuned", lambda config: TunedBackend(config))

_torch_probe_done = False


def _ensure_torch_registered() -> None:
    """Import the torch backend module once, if torch is importable.

    The module self-registers on import; an ImportError leaves the
    registry without ``torch`` and :func:`make_backend` reports the
    missing extra.
    """
    global _torch_probe_done
    if _torch_probe_done or "torch" in _REGISTRY:
        return
    _torch_probe_done = True
    try:
        from repro.core import backend_torch  # noqa: F401
    except ImportError:
        pass


def available_backends() -> Tuple[str, ...]:
    """Names constructible right now (``torch`` only when importable)."""
    _ensure_torch_registered()
    return tuple(sorted(_REGISTRY))


def check_backend_name(name: str) -> None:
    """Validate a config-level backend name; raises :class:`ConfigError`.

    ``torch`` passes even when torch is not installed — the name is
    legal, construction is what requires the extra — so configs remain
    buildable everywhere.  Third-party names pass once registered.
    """
    if name in BACKEND_CHOICES or name in _REGISTRY:
        return
    raise ConfigError(
        f"backend must be one of {BACKEND_CHOICES} (or a name registered "
        f"via repro.core.backend.register_backend), got {name!r}"
    )


def make_backend(config) -> KernelBackend:
    """Construct a fresh backend instance for one engine.

    Raises :class:`ConfigError` when the name is unknown, when
    ``torch`` is requested without torch installed, or when the
    backend cannot compute under ``config.dtype``.
    """
    name = config.backend
    if name == "torch":
        _ensure_torch_registered()
    factory = _REGISTRY.get(name)
    if factory is None:
        if name == "torch":
            raise ConfigError(
                "backend 'torch' requires torch, which is not importable; "
                "install the extra: pip install 'repro-hima[torch]'"
            )
        check_backend_name(name)  # raises for unknown names
        raise ConfigError(f"backend {name!r} is not registered")
    backend = factory(config)
    if config.dtype not in backend.supported_dtypes:
        raise ConfigError(
            f"backend {name!r} supports dtypes {backend.supported_dtypes}, "
            f"got dtype {config.dtype!r}"
        )
    return backend
