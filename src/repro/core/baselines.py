"""Reference models of the designs HiMA is compared against (Fig. 12).

Farm [4] and MANNA [33] are closed designs; the GPU/CPU are hardware we do
not have.  Their specs are encoded from the paper's published numbers with
the derivation chain spelled out, so every Figure 12 ratio can be
regenerated and audited:

* GPU (Nvidia 3080Ti): 5.16 ms/test average bAbI inference (Sec. 3.2).
* CPU (i7-9700K): 10.94 ms/test (2.12x slower than the GPU).
* Farm: 68.5x faster than the GPU (Sec. 7.4) => 75.3 us/test.
  Technology-normalized area: the paper says HiMA-baseline (79.14 mm^2)
  is 3.16x Farm's area => 25.04 mm^2.  Power: from "6.1x better energy
  efficiency than MANNA" for HiMA-DNC and MANNA = 32x Farm power
  => Farm ~0.50 W.
* MANNA (15 nm): similar speedup to Farm; the headline "HiMA-DNC is 6.47x
  faster than MANNA" with HiMA-DNC at 437x GPU => MANNA at 67.5x GPU
  (76.4 us/test).  Area 11x Farm (275.5 mm^2 normalized), power 32x Farm
  (15.97 W).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hw.tech import NODE_15NM, NODE_40NM, TechnologyNode

#: Published GPU/CPU reference latencies (seconds per bAbI test).
GPU_SECONDS_PER_TEST = 5.16e-3
CPU_SECONDS_PER_TEST = 10.94e-3


@dataclass(frozen=True)
class BaselineSpec:
    """A published comparison design."""

    name: str
    technology: TechnologyNode
    speedup_vs_gpu: float
    area_mm2_normalized: float  # already normalized to 40 nm
    power_w: float
    max_memory_rows: Optional[int] = None
    supports_dnc: bool = False
    notes: str = ""

    @property
    def seconds_per_test(self) -> float:
        return GPU_SECONDS_PER_TEST / self.speedup_vs_gpu

    @property
    def throughput(self) -> float:
        """Tests per second."""
        return 1.0 / self.seconds_per_test


FARM = BaselineSpec(
    name="Farm",
    technology=NODE_40NM,
    speedup_vs_gpu=68.5,
    area_mm2_normalized=79.14 / 3.16,  # HiMA-baseline is 3.16x Farm
    power_w=0.499,
    max_memory_rows=256,
    supports_dnc=True,
    notes="centralized mixed-signal accelerator; memory capped at N=256",
)

MANNA = BaselineSpec(
    name="MANNA",
    technology=NODE_15NM,
    speedup_vs_gpu=437.0 / 6.47,  # paper: HiMA-DNC is 6.47x faster
    area_mm2_normalized=11.0 * FARM.area_mm2_normalized,
    power_w=32.0 * FARM.power_w,
    max_memory_rows=None,
    supports_dnc=False,
    notes="16-tile H-tree NTM accelerator; no history-based kernels",
)

BASELINES: Dict[str, BaselineSpec] = {"farm": FARM, "manna": MANNA}


def gpu_reference() -> float:
    """Published GPU latency (seconds per test)."""
    return GPU_SECONDS_PER_TEST


def cpu_reference() -> float:
    """Published CPU latency (seconds per test)."""
    return CPU_SECONDS_PER_TEST


__all__ = [
    "BaselineSpec",
    "BASELINES",
    "FARM",
    "MANNA",
    "GPU_SECONDS_PER_TEST",
    "CPU_SECONDS_PER_TEST",
    "gpu_reference",
    "cpu_reference",
]
