"""Memory-to-tile placement.

External memory and the length-``N`` state memories are partitioned
row-wise (the Eq. 1/2 optimum): tile ``t`` owns rows
``[t*N/Nt, (t+1)*N/Nt)``.  The ``N x N`` linkage is partitioned
submatrix-wise on an ``Nt_h x Nt_w`` grid (the Eq. 3 optimum); tile
``t = bi*Nt_w + bj`` owns block ``(bi, bj)``.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import HiMAConfig
from repro.errors import ConfigError


class MemoryMap:
    """Row/block ownership for one :class:`HiMAConfig`."""

    def __init__(self, config: HiMAConfig):
        self.config = config
        self.num_tiles = config.num_tiles
        self.memory_size = config.memory_size
        self.rows_per_tile = config.local_rows
        self.nt_h, self.nt_w = config.linkage_partition
        if self.memory_size % self.nt_h or self.memory_size % self.nt_w:
            raise ConfigError(
                f"linkage grid {self.nt_h}x{self.nt_w} does not divide "
                f"N={self.memory_size}"
            )
        self.block_rows = self.memory_size // self.nt_h
        self.block_cols = self.memory_size // self.nt_w

    # ------------------------------------------------------------------
    # Row-wise external/state memories
    # ------------------------------------------------------------------
    def external_rows(self, tile: int) -> slice:
        """External-memory rows owned by ``tile``."""
        self._check_tile(tile)
        start = tile * self.rows_per_tile
        return slice(start, start + self.rows_per_tile)

    def owner_of_row(self, row: int) -> int:
        """The tile owning external-memory row ``row``."""
        if not 0 <= row < self.memory_size:
            raise ConfigError(f"row {row} out of range 0..{self.memory_size - 1}")
        return row // self.rows_per_tile

    # ------------------------------------------------------------------
    # Submatrix-wise linkage memory
    # ------------------------------------------------------------------
    def linkage_grid_index(self, tile: int) -> Tuple[int, int]:
        """Block coordinates ``(bi, bj)`` of ``tile`` in the linkage grid."""
        self._check_tile(tile)
        return divmod(tile, self.nt_w)

    def linkage_block(self, tile: int) -> Tuple[slice, slice]:
        """``(row_slice, col_slice)`` of ``tile``'s linkage submatrix."""
        bi, bj = self.linkage_grid_index(tile)
        rows = slice(bi * self.block_rows, (bi + 1) * self.block_rows)
        cols = slice(bj * self.block_cols, (bj + 1) * self.block_cols)
        return rows, cols

    def row_segment_owners(self, row_slice: slice) -> Tuple[int, ...]:
        """External-memory tiles whose rows intersect ``row_slice``."""
        first = self.owner_of_row(row_slice.start)
        last = self.owner_of_row(row_slice.stop - 1)
        return tuple(range(first, last + 1))

    # ------------------------------------------------------------------
    @property
    def ct_node(self) -> int:
        """CT node id in the matching NoC topology."""
        return self.num_tiles

    def _check_tile(self, tile: int) -> None:
        if not 0 <= tile < self.num_tiles:
            raise ConfigError(
                f"tile {tile} out of range 0..{self.num_tiles - 1}"
            )


__all__ = ["MemoryMap"]
