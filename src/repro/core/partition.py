"""Submatrix-wise memory-partition traffic models (paper Section 4.2).

A generalized submatrix partition divides an ``N x C`` matrix across
``Nt = Nt_h x Nt_w`` tiles (``Nt_h`` block rows, ``Nt_w`` block columns).
Row-wise (``Nt_w = 1``) and column-wise (``Nt_h = 1``) are the two
extremes.  The closed forms below are the paper's Equations (1)-(3); the
brute-force optimizers recover its conclusions:

* external memory: row-wise is optimal (Eq. 1 and Eq. 2),
* linkage memory: the interior optimum — 4x4 at ``Nt = 16`` (Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Partition:
    """A submatrix partition: ``rows x cols`` tile grid."""

    rows: int  # Nt_h: block rows
    cols: int  # Nt_w: block columns

    def __post_init__(self):
        check_positive("rows", self.rows)
        check_positive("cols", self.cols)

    @property
    def num_tiles(self) -> int:
        return self.rows * self.cols

    def block_shape(self, matrix_rows: int, matrix_cols: int) -> Tuple[int, int]:
        """Shape of one tile's submatrix block."""
        if matrix_rows % self.rows or matrix_cols % self.cols:
            raise ConfigError(
                f"matrix {matrix_rows}x{matrix_cols} does not divide into a "
                f"{self.rows}x{self.cols} grid"
            )
        return matrix_rows // self.rows, matrix_cols // self.cols


def factor_pairs(num_tiles: int) -> List[Tuple[int, int]]:
    """All ``(Nt_h, Nt_w)`` factorizations of ``num_tiles``."""
    check_positive("num_tiles", num_tiles)
    pairs = []
    for rows in range(1, num_tiles + 1):
        if num_tiles % rows == 0:
            pairs.append((rows, num_tiles // rows))
    return pairs


# ---------------------------------------------------------------------------
# Closed-form inter-tile transfer counts
# ---------------------------------------------------------------------------


def content_weighting_traffic(memory_rows: int, nt_h: int, nt_w: int) -> int:
    """Eq. (1): normalization + similarity transfers.

    Column-split rows need ``2N(Nt_w - 1)`` transfers to normalize; the
    similarity psum reduction costs ``2(Nt_h - 1)``.
    """
    return 2 * memory_rows * (nt_w - 1) + 2 * (nt_h - 1)


def memory_read_traffic(
    memory_rows: int, word_size: int, num_tiles: int, nt_h: int, nt_w: int
) -> float:
    """Eq. (2): transpose + matrix-vector multiply in the memory-read kernel.

    ``Nt_w (Nt_w - 1) N / Nt`` submatrix-element transfers plus
    ``W (Nt_h - 1)`` partial-sum transfers.
    """
    return nt_w * (nt_w - 1) * memory_rows / num_tiles + word_size * (nt_h - 1)


def forward_backward_traffic(num_tiles: int, nt_h: int, nt_w: int) -> float:
    """Eq. (3): forward + backward pass over the linkage matrix
    (relative units, exactly as printed in the paper).

    Both row-wise and column-wise extremes are suboptimal; the minimum is
    the near-square grid (4x4 for ``Nt = 16``).
    """
    forward = nt_h * (nt_h - 1) / num_tiles + nt_w
    backward = nt_w * (nt_w - 1) / num_tiles + nt_h
    return forward + backward


def forward_backward_traffic_words(
    memory_rows: int, num_reads: int, num_tiles: int, nt_h: int, nt_w: int
) -> float:
    """Absolute word count for the forward-backward kernel.

    The Eq. (2) structure applied to the ``N x N`` linkage, per read head
    and per direction: psum transfers across block columns for the
    forward pass and across block rows for the backward pass, plus the
    read-weighting segment distribution.
    """
    n = memory_rows
    per_head_forward = nt_w * (nt_w - 1) * n / num_tiles + (n / nt_h) * (nt_h - 1)
    per_head_backward = nt_h * (nt_h - 1) * n / num_tiles + (n / nt_w) * (nt_w - 1)
    segment_distribution = 2 * n  # w_r segments to block owners, results back
    return num_reads * (per_head_forward + per_head_backward + segment_distribution)


def linkage_distribution_traffic(
    memory_rows: int, num_tiles: int, nt_h: int, nt_w: int
) -> float:
    """Words to distribute ``w_w`` / ``p`` segments for the linkage update.

    Every linkage tile needs its block-row segment of ``w_w`` (``N/Nt_h``
    words) and the block-column segments of ``w_w`` and ``p`` (``N/Nt_w``
    each); Table 1 lists this kernel's NoC traffic as ``O(Nt * N)``.
    """
    n = memory_rows
    return num_tiles * (n / nt_h + 2 * n / nt_w)


# ---------------------------------------------------------------------------
# Optimizers
# ---------------------------------------------------------------------------


def optimal_external_partition(
    memory_rows: int, word_size: int, num_tiles: int
) -> Tuple[int, int]:
    """Brute-force Eq. (1) + Eq. (2) minimizer for the external memory.

    Returns ``(Nt_h, Nt_w)``; the paper's conclusion (row-wise,
    ``(Nt, 1)``) emerges for all realistic ``N >> Nt``.
    """
    best = None
    best_cost = None
    for nt_h, nt_w in factor_pairs(num_tiles):
        cost = content_weighting_traffic(memory_rows, nt_h, nt_w) + (
            memory_read_traffic(memory_rows, word_size, num_tiles, nt_h, nt_w)
        )
        if best_cost is None or cost < best_cost:
            best, best_cost = (nt_h, nt_w), cost
    return best


def optimal_linkage_partition(memory_rows: int, num_tiles: int) -> Tuple[int, int]:
    """Brute-force Eq. (3) minimizer for the linkage memory.

    Ties break toward the more row-dominant grid for determinism.
    """
    best = None
    best_cost = None
    for nt_h, nt_w in factor_pairs(num_tiles):
        cost = forward_backward_traffic(num_tiles, nt_h, nt_w)
        if best_cost is None or cost < best_cost or (
            cost == best_cost and nt_h > best[0]
        ):
            best, best_cost = (nt_h, nt_w), cost
    return best


__all__ = [
    "Partition",
    "factor_pairs",
    "content_weighting_traffic",
    "memory_read_traffic",
    "forward_backward_traffic",
    "forward_backward_traffic_words",
    "linkage_distribution_traffic",
    "optimal_external_partition",
    "optimal_linkage_partition",
]
